//! Implication-graph static learning and conflict-driven untestability
//! analysis (`--learn`).
//!
//! Three layers, all running before the first pattern:
//!
//! 1. **Direct implications** over literals `net=0` / `net=1`: the
//!    ternary-sound gate edges (for an AND gate `g`, `in=0 → g=0` and
//!    `g=1 → in=1`; dually for OR/NAND/NOR; both directions for NOT/BUF;
//!    XOR/XNOR contribute no single-literal edges) plus the flip-flop
//!    edges `d=v @t → q=v @t+1` and `q=v @t → d=v @t−1` (the backward
//!    edge is sound because a *binary* `q` proves the cycle is not the
//!    all-`X` initial one). The edge set is closed under contrapositives
//!    by construction, and [`ImplicationGraph::implications_of`] closes
//!    it under transitivity on query.
//! 2. **Static learning** (FIRE-style indirect implications): assert one
//!    literal in a bounded time-frame window, propagate the full
//!    constraint system to a fixpoint, and record every net forced to a
//!    binary singleton that the direct closure cannot derive as a
//!    *learned* edge.
//! 3. **Conflict-driven untestability** (`F004`): per fault, assert the
//!    *mandatory assignments* — the excitation value at the fault site
//!    plus, at every post-dominator on the way to an observable output,
//!    the exact binary non-controlling value on each side input outside
//!    the fault's fanout cone — and propagate. A contradiction in any
//!    alignment of the bounded window is a proof that no input sequence
//!    can both excite the fault and propagate its effect, so
//!    [`prune_stuck_at_learned`] / [`prune_transition_learned`] drop the
//!    fault from the simulated universe with the same byte-identical
//!    expansion contract as the base `--prune` pass.
//!
//! # Soundness under bounded unrolling
//!
//! All proofs quantify over a *candidate escape cycle* `t`: the first
//! cycle at which the fault effect leaves the fault site's combinational
//! fanout cone (reaching a primary-output tap or a flip-flop D pin). A
//! detected fault must have one, and at cycle `t` both machines still
//! share the *same* flip-flop state, so the good-machine constraint
//! system describes both. The window cannot know which absolute cycle
//! `t` is, so every fault is checked under `frames` alignments: one
//! *full-history* window (covering every `t ≥ frames−1`, flip-flop
//! frame-0 masks seeded from the reachability fixpoint, which soundly
//! over-approximates any cycle) and one *reset-start* window per
//! `t < frames−1` (frame 0 is absolute cycle 0, flip-flops exactly `X`).
//! Only if **every** alignment is contradictory is the fault pruned —
//! bounding the depth can only lose precision, never soundness.

use cfs_faults::{FaultFate, FaultSite, PruneReason, PrunedUniverse, StuckAt, TransitionFault};
use cfs_logic::GateFn;
use cfs_netlist::{BenchProvenance, Circuit, GateId, GateKind};

use crate::analyze::{eval_mask, mask_of, site_net, span_of, CircuitAnalysis, B0, B1, BX};
use crate::diag::{Report, RuleCode};

/// Default number of unrolled time frames for `--learn`.
pub const DEFAULT_LEARN_FRAMES: usize = 2;

/// Upper bound on constraint-propagation sweeps per window. Propagation
/// is monotone (masks only shrink) so the cap never costs soundness —
/// stopping early just proves fewer conflicts.
const MAX_SWEEPS: usize = 64;

/// Configuration of the implication-learning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LearnOptions {
    /// Number of unrolled time frames (≥ 1). Frame `frames−1` is the
    /// candidate escape cycle where mandatory assignments are asserted.
    pub frames: usize,
}

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            frames: DEFAULT_LEARN_FRAMES,
        }
    }
}

/// One implication reachable from a source literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Implication {
    /// The implied net.
    pub target: GateId,
    /// The implied binary value.
    pub value: bool,
    /// Time-frame offset relative to the source literal's cycle.
    pub delta: i32,
    /// Whether the final hop is a learned (indirect) edge rather than a
    /// direct gate implication.
    pub learned: bool,
}

/// The binary implication graph over `{net=0, net=1}` literals.
///
/// Direct edges hold at every cycle. Learned edges hold whenever the
/// source literal holds at cycle `≥ frames−1`; transitive chains
/// returned by [`Self::implications_of`] are guaranteed once the source
/// cycle is `≥ 2·(frames−1)` (steady state), since every intermediate
/// literal then also sits past the learning horizon.
#[derive(Debug, Clone)]
pub struct ImplicationGraph {
    frames: usize,
    /// Per source literal (`2·node + value`): direct `(target, delta)`.
    direct: Vec<Vec<(u32, i8)>>,
    /// Per source literal: learned `(target, delta)` edges.
    learned: Vec<Vec<(u32, i8)>>,
}

const fn lit(net: GateId, value: bool) -> u32 {
    (net.index() * 2 + value as usize) as u32
}

fn lit_net(l: u32) -> GateId {
    GateId::from_index(l as usize / 2)
}

const fn lit_value(l: u32) -> bool {
    l % 2 == 1
}

/// Frame indices are tiny; the conversion can never fail.
fn frame_i32(frame: usize) -> i32 {
    i32::try_from(frame).expect("frame index fits i32")
}

impl ImplicationGraph {
    /// Builds the graph: direct gate/flip-flop edges plus static
    /// learning over every literal the reachability analysis allows.
    pub fn build(
        circuit: &Circuit,
        analysis: &CircuitAnalysis,
        options: LearnOptions,
    ) -> ImplicationGraph {
        let frames = options.frames.max(1);
        let n = circuit.num_nodes();
        let mut graph = ImplicationGraph {
            frames,
            direct: vec![Vec::new(); 2 * n],
            learned: vec![Vec::new(); 2 * n],
        };
        graph.build_direct(circuit);
        graph.learn_indirect(circuit, analysis);
        graph
    }

    /// The number of unrolled frames the graph was built for.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Total direct edges.
    pub fn num_direct(&self) -> usize {
        self.direct.iter().map(Vec::len).sum()
    }

    /// Total learned (indirect) edges.
    pub fn num_learned(&self) -> usize {
        self.learned.iter().map(Vec::len).sum()
    }

    fn add_direct(&mut self, from: u32, to: u32, delta: i8) {
        if !self.direct[from as usize].contains(&(to, delta)) {
            self.direct[from as usize].push((to, delta));
        }
    }

    fn build_direct(&mut self, circuit: &Circuit) {
        for (i, gate) in circuit.gates().iter().enumerate() {
            let g = GateId::from_index(i);
            match gate.kind() {
                GateKind::Input => {}
                GateKind::Dff => {
                    let d = gate.fanin()[0];
                    for v in [false, true] {
                        self.add_direct(lit(d, v), lit(g, v), 1);
                        self.add_direct(lit(g, v), lit(d, v), -1);
                    }
                }
                GateKind::Comb(f) => {
                    for &a in gate.fanin() {
                        match f {
                            GateFn::Buf => {
                                for v in [false, true] {
                                    self.add_direct(lit(a, v), lit(g, v), 0);
                                    self.add_direct(lit(g, v), lit(a, v), 0);
                                }
                            }
                            GateFn::Not => {
                                for v in [false, true] {
                                    self.add_direct(lit(a, v), lit(g, !v), 0);
                                    self.add_direct(lit(g, v), lit(a, !v), 0);
                                }
                            }
                            GateFn::And => {
                                self.add_direct(lit(a, false), lit(g, false), 0);
                                self.add_direct(lit(g, true), lit(a, true), 0);
                            }
                            GateFn::Or => {
                                self.add_direct(lit(a, true), lit(g, true), 0);
                                self.add_direct(lit(g, false), lit(a, false), 0);
                            }
                            GateFn::Nand => {
                                self.add_direct(lit(a, false), lit(g, true), 0);
                                self.add_direct(lit(g, false), lit(a, true), 0);
                            }
                            GateFn::Nor => {
                                self.add_direct(lit(a, true), lit(g, false), 0);
                                self.add_direct(lit(g, true), lit(a, false), 0);
                            }
                            // No single-literal implication fixes an
                            // XOR/XNOR output or input.
                            GateFn::Xor | GateFn::Xnor => {}
                        }
                    }
                }
            }
        }
    }

    /// Static learning: assert each feasible literal (once at the last
    /// frame for backward/same-frame facts, once at frame 0 for
    /// cross-flop forward facts) and record every forced binary
    /// singleton the direct closure cannot already derive.
    fn learn_indirect(&mut self, circuit: &Circuit, analysis: &CircuitAnalysis) {
        let n = circuit.num_nodes();
        let forward_pass = self.frames >= 2 && circuit.num_dffs() > 0;
        for node in 0..n {
            let id = GateId::from_index(node);
            for value in [false, true] {
                let bit = if value { B1 } else { B0 };
                if analysis.reach[node] & bit == 0 {
                    continue; // the literal can never hold
                }
                let known = self.closure(id, value);
                for assert_at_start in [false, true] {
                    if assert_at_start && !forward_pass {
                        continue;
                    }
                    let mut w = Window::full_history(circuit, &analysis.reach, self.frames);
                    let assert_frame = if assert_at_start { 0 } else { self.frames - 1 };
                    if w.constrain(assert_frame, id, bit) {
                        continue; // contradiction: nothing to learn from
                    }
                    if w.propagate(circuit, None) {
                        continue;
                    }
                    for r in 0..self.frames {
                        let delta = frame_i32(r) - frame_i32(assert_frame);
                        if assert_at_start && delta <= 0 {
                            continue; // frame-0 asserts only harvest forward facts
                        }
                        for m in 0..n {
                            let mask = w.at(r, m);
                            let forced = match mask {
                                x if x == B0 => Some(false),
                                x if x == B1 => Some(true),
                                _ => None,
                            };
                            let Some(u) = forced else { continue };
                            if m == node && delta == 0 {
                                continue;
                            }
                            let fbit = if u { B1 } else { B0 };
                            if analysis.reach[m] == fbit {
                                continue; // already a proven constant
                            }
                            let target = GateId::from_index(m);
                            if known.iter().any(|imp| {
                                imp.target == target && imp.value == u && imp.delta == delta
                            }) {
                                continue; // the direct closure knows it
                            }
                            let (from, to) = (lit(id, value), lit(target, u));
                            let delta = delta as i8;
                            if !self.learned[from as usize].contains(&(to, delta)) {
                                self.learned[from as usize].push((to, delta));
                            }
                        }
                    }
                }
            }
        }
    }

    /// The transitive closure over direct edges only (used while
    /// learning, to filter facts the graph already derives).
    fn closure(&self, net: GateId, value: bool) -> Vec<Implication> {
        self.close_from(net, value, false)
    }

    /// All implications of `net = value`: the transitive closure over
    /// direct and learned edges, with cumulative frame offsets bounded
    /// by `frames − 1` in either direction.
    pub fn implications_of(&self, net: GateId, value: bool) -> Vec<Implication> {
        self.close_from(net, value, true)
    }

    fn close_from(&self, net: GateId, value: bool, use_learned: bool) -> Vec<Implication> {
        let bound = frame_i32(self.frames) - 1;
        let span = (2 * bound + 1) as usize;
        let offset = |delta: i32| (delta + bound) as usize;
        let mut seen = vec![false; self.direct.len() * span];
        let mut out = Vec::new();
        let mut queue = vec![(lit(net, value), 0i32, false)];
        seen[lit(net, value) as usize * span + offset(0)] = true;
        while let Some((l, delta, learned)) = queue.pop() {
            if !(l == lit(net, value) && delta == 0) {
                out.push(Implication {
                    target: lit_net(l),
                    value: lit_value(l),
                    delta,
                    learned,
                });
            }
            let hops = if use_learned {
                [
                    (&self.direct[l as usize], false),
                    (&self.learned[l as usize], true),
                ]
            } else {
                [
                    (&self.direct[l as usize], false),
                    (&self.direct[l as usize], false),
                ]
            };
            for (edges, via_learned) in [&hops[0], &hops[1]] {
                if *via_learned && !use_learned {
                    continue;
                }
                for &(to, d) in edges.iter() {
                    let nd = delta + i32::from(d);
                    if nd.abs() > bound {
                        continue;
                    }
                    let slot = to as usize * span + offset(nd);
                    if !seen[slot] {
                        seen[slot] = true;
                        queue.push((to, nd, *via_learned));
                    }
                }
                if !use_learned {
                    break; // both rows alias the direct list
                }
            }
        }
        out.sort_by_key(|imp| (imp.target.index(), imp.delta, imp.value));
        out
    }

    /// Applies first-hop edges of every binary-singleton net at the last
    /// frame of a full-history window. Sound there: the last frame is a
    /// cycle `≥ frames−1`, the learning horizon.
    fn apply_at_last_frame(&self, w: &mut Window) -> Result<bool, ()> {
        let last = w.w - 1;
        let mut changed = false;
        for m in 0..w.n {
            let mask = w.at(last, m);
            let value = match mask {
                x if x == B0 => false,
                x if x == B1 => true,
                _ => continue,
            };
            let l = lit(GateId::from_index(m), value) as usize;
            for edges in [&self.direct[l], &self.learned[l]] {
                for &(to, d) in edges.iter() {
                    let Some(frame) = last.checked_add_signed(d as isize) else {
                        continue;
                    };
                    if frame >= w.w {
                        continue;
                    }
                    let bit = if lit_value(to) { B1 } else { B0 };
                    let before = w.at(frame, lit_net(to).index());
                    if w.constrain(frame, lit_net(to), bit) {
                        return Err(());
                    }
                    changed |= w.at(frame, lit_net(to).index()) != before;
                }
            }
        }
        Ok(changed)
    }
}

/// A bounded time-frame constraint window: one `{0,1,X}` value-set mask
/// per (frame, net), shrunk monotonically by propagation.
struct Window {
    w: usize,
    n: usize,
    masks: Vec<u8>,
    conflict: bool,
}

impl Window {
    /// A window whose frame 0 may be any cycle: every frame starts from
    /// the reachability masks (sound over-approximation of any cycle).
    fn full_history(circuit: &Circuit, reach: &[u8], w: usize) -> Window {
        let n = circuit.num_nodes();
        let mut masks = Vec::with_capacity(w * n);
        for _ in 0..w {
            masks.extend_from_slice(reach);
        }
        Window {
            w,
            n,
            masks,
            conflict: false,
        }
    }

    /// A window whose frame 0 is absolute cycle 0: flip-flops are
    /// exactly `X` there (the all-`X` initial state).
    fn reset_start(circuit: &Circuit, reach: &[u8], w: usize) -> Window {
        let mut win = Window::full_history(circuit, reach, w);
        for &q in circuit.dffs() {
            win.masks[q.index()] = BX;
        }
        win
    }

    fn at(&self, frame: usize, node: usize) -> u8 {
        self.masks[frame * self.n + node]
    }

    /// Intersects a mask in; returns `true` on conflict (empty set).
    fn constrain(&mut self, frame: usize, node: GateId, mask: u8) -> bool {
        let slot = &mut self.masks[frame * self.n + node.index()];
        *slot &= mask;
        if *slot == 0 {
            self.conflict = true;
        }
        self.conflict
    }

    /// Propagates to a fixpoint (or the sweep cap): forward gate
    /// evaluation, exact per-input backward filtering, exact flip-flop
    /// links between consecutive frames, and (full-history windows only)
    /// the implication graph's edges at the last frame. Returns `true`
    /// when the system is contradictory.
    fn propagate(&mut self, circuit: &Circuit, graph: Option<&ImplicationGraph>) -> bool {
        let mut ins: Vec<u8> = Vec::new();
        for _ in 0..MAX_SWEEPS {
            if self.conflict {
                return true;
            }
            let mut changed = false;
            // Forward: out &= f(ins), exact under input independence.
            for r in 0..self.w {
                for &g in circuit.topo_order() {
                    let gate = circuit.gate(g);
                    let GateKind::Comb(f) = gate.kind() else {
                        unreachable!("topo order is combinational");
                    };
                    ins.clear();
                    ins.extend(gate.fanin().iter().map(|s| self.at(r, s.index())));
                    let before = self.at(r, g.index());
                    if self.constrain(r, g, eval_mask(f, &ins)) {
                        return true;
                    }
                    changed |= self.at(r, g.index()) != before;
                }
            }
            // Backward: input value v survives iff the gate can still
            // produce something in the output mask with input i := {v}.
            for r in 0..self.w {
                for &g in circuit.topo_order().iter().rev() {
                    let gate = circuit.gate(g);
                    let GateKind::Comb(f) = gate.kind() else {
                        unreachable!("topo order is combinational");
                    };
                    let out = self.at(r, g.index());
                    ins.clear();
                    ins.extend(gate.fanin().iter().map(|s| self.at(r, s.index())));
                    for i in 0..gate.fanin().len() {
                        let mut allowed = 0u8;
                        let original = ins[i];
                        for bit in [B0, B1, BX] {
                            if original & bit == 0 {
                                continue;
                            }
                            ins[i] = bit;
                            if eval_mask(f, &ins) & out != 0 {
                                allowed |= bit;
                            }
                        }
                        ins[i] = original;
                        if allowed != original {
                            if self.constrain(r, gate.fanin()[i], allowed) {
                                return true;
                            }
                            changed = true;
                        }
                    }
                }
            }
            // Flip-flop links: Q at frame r+1 equals D at frame r,
            // exactly in both directions (any frame ≥ 1 is an absolute
            // cycle ≥ 1 under both window kinds, so the X-initial escape
            // hatch is never needed here).
            for &q in circuit.dffs() {
                let d = circuit.gate(q).fanin()[0];
                for r in 1..self.w {
                    let (qm, dm) = (self.at(r, q.index()), self.at(r - 1, d.index()));
                    if qm & dm != qm || qm & dm != dm {
                        if self.constrain(r, q, dm) || self.constrain(r - 1, d, qm) {
                            return true;
                        }
                        changed = true;
                    }
                }
            }
            if let Some(graph) = graph {
                match graph.apply_at_last_frame(self) {
                    Err(()) => return true,
                    Ok(c) => changed |= c,
                }
            }
            if !changed {
                return self.conflict;
            }
        }
        self.conflict
    }
}

/// The combinational fanout cone of a fault origin, with its escape
/// exits and the post-dominators every escape path crosses. Shared by
/// every fault whose effect enters the circuit at the same gate.
struct ConeInfo {
    /// Cone nodes (origin plus its forward combinational closure), in
    /// ascending level order.
    nodes: Vec<GateId>,
    /// Cone nodes where the effect escapes the frame: primary-output
    /// taps and nodes feeding a flip-flop D pin.
    exits: Vec<GateId>,
    /// Post-dominators of the origin over exit-reaching cone paths,
    /// including the origin itself.
    dominators: Vec<GateId>,
    /// Whether any exit is reachable at all.
    live: bool,
}

fn build_cone(circuit: &Circuit, po_tapped: &[bool], origin: GateId) -> ConeInfo {
    let n = circuit.num_nodes();
    let mut in_cone = vec![false; n];
    let mut nodes = vec![origin];
    in_cone[origin.index()] = true;
    let mut head = 0;
    while head < nodes.len() {
        let v = nodes[head];
        head += 1;
        for &c in circuit.gate(v).fanout() {
            if circuit.gate(c).kind().is_comb() && !in_cone[c.index()] {
                in_cone[c.index()] = true;
                nodes.push(c);
            }
        }
    }
    nodes.sort_by_key(|&v| (circuit.level(v), v));
    let is_exit = |v: GateId| {
        po_tapped[v.index()]
            || circuit
                .gate(v)
                .fanout()
                .iter()
                .any(|&c| circuit.gate(c).kind() == GateKind::Dff)
    };
    let exits: Vec<GateId> = nodes.iter().copied().filter(|&v| is_exit(v)).collect();
    // Restrict to exit-reaching nodes (backward over cone edges).
    let mut keep = vec![false; nodes.len()];
    let local: std::collections::HashMap<GateId, usize> =
        nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    for (i, &v) in nodes.iter().enumerate().rev() {
        keep[i] = is_exit(v)
            || circuit
                .gate(v)
                .fanout()
                .iter()
                .any(|c| local.get(c).is_some_and(|&j| keep[j]));
    }
    if !keep[0] {
        return ConeInfo {
            nodes,
            exits,
            dominators: Vec::new(),
            live: false,
        };
    }
    // Post-dominators over the kept subgraph, as cone-local bitsets
    // intersected in reverse level order. Exits end their paths.
    let words = nodes.len().div_ceil(64);
    let mut pdom: Vec<Option<Vec<u64>>> = vec![None; nodes.len()];
    for (i, &v) in nodes.iter().enumerate().rev() {
        if !keep[i] {
            continue;
        }
        let mut set: Option<Vec<u64>> = None;
        if !is_exit(v) {
            for c in circuit.gate(v).fanout() {
                let Some(&j) = local.get(c) else { continue };
                if !keep[j] {
                    continue;
                }
                let succ = pdom[j].as_ref().expect("reverse order covers successors");
                match &mut set {
                    None => set = Some(succ.clone()),
                    Some(s) => {
                        for (w, x) in s.iter_mut().zip(succ) {
                            *w &= x;
                        }
                    }
                }
            }
        }
        let mut set = set.unwrap_or_else(|| vec![0u64; words]);
        set[i / 64] |= 1u64 << (i % 64);
        pdom[i] = Some(set);
    }
    let origin_pdom = pdom[0].as_ref().expect("origin is kept");
    let dominators = nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| origin_pdom[i / 64] >> (i % 64) & 1 != 0)
        .map(|(_, &v)| v)
        .collect();
    ConeInfo {
        nodes,
        exits,
        dominators,
        live: true,
    }
}

/// The exact binary non-controlling side mask a strong divergence needs
/// through a gate, or `None` when the gate has no side condition.
fn side_mask(f: GateFn) -> Option<u8> {
    match f {
        GateFn::And | GateFn::Nand => Some(B1),
        GateFn::Or | GateFn::Nor => Some(B0),
        GateFn::Xor | GateFn::Xnor => Some(B0 | B1),
        GateFn::Buf | GateFn::Not => None,
    }
}

/// Shared state for per-fault conflict checks over one circuit.
struct LearnContext<'a> {
    circuit: &'a Circuit,
    analysis: &'a CircuitAnalysis,
    graph: &'a ImplicationGraph,
    po_tapped: Vec<bool>,
    cones: Vec<Option<ConeInfo>>,
    in_cone: Vec<u32>,
    epoch: u32,
}

/// What a fault asserts in a window: site excitation at the escape
/// frame, an optional previous-frame value (transition launch), and the
/// gate/pin the effect enters through (`None` for stem faults).
struct Mandatory {
    site: GateId,
    excite: u8,
    launch: Option<u8>,
    effect: Option<(GateId, usize)>,
    origin: GateId,
}

impl<'a> LearnContext<'a> {
    fn new(
        circuit: &'a Circuit,
        analysis: &'a CircuitAnalysis,
        graph: &'a ImplicationGraph,
    ) -> Self {
        let mut po_tapped = vec![false; circuit.num_nodes()];
        for &tap in circuit.outputs() {
            po_tapped[tap.index()] = true;
        }
        LearnContext {
            circuit,
            analysis,
            graph,
            po_tapped,
            cones: (0..circuit.num_nodes()).map(|_| None).collect(),
            in_cone: vec![0; circuit.num_nodes()],
            epoch: 0,
        }
    }

    fn cone(&mut self, origin: GateId) -> &ConeInfo {
        if self.cones[origin.index()].is_none() {
            self.cones[origin.index()] = Some(build_cone(self.circuit, &self.po_tapped, origin));
        }
        self.cones[origin.index()].as_ref().unwrap()
    }

    fn mark_cone(&mut self, origin: GateId) {
        self.epoch += 1;
        let epoch = self.epoch;
        if self.cones[origin.index()].is_none() {
            self.cone(origin);
        }
        for &v in &self.cones[origin.index()].as_ref().unwrap().nodes {
            self.in_cone[v.index()] = epoch;
        }
    }

    fn is_in_cone(&self, v: GateId) -> bool {
        self.in_cone[v.index()] == self.epoch
    }

    fn stuck_mandatory(&self, f: StuckAt) -> Mandatory {
        let excite = mask_of(!f.value());
        match f.site {
            FaultSite::Output { gate } => Mandatory {
                site: gate,
                excite,
                launch: None,
                effect: None,
                origin: gate,
            },
            FaultSite::Pin { gate, pin } => Mandatory {
                site: site_net(self.circuit, f.site),
                excite,
                launch: None,
                effect: Some((gate, pin as usize)),
                origin: gate,
            },
        }
    }

    fn transition_mandatory(&self, f: TransitionFault) -> Mandatory {
        let driver = self.circuit.gate(f.gate).fanin()[f.pin as usize];
        Mandatory {
            site: driver,
            excite: mask_of(f.edge.to_value()),
            launch: Some(mask_of(f.edge.from_value())),
            effect: Some((f.gate, f.pin as usize)),
            origin: f.gate,
        }
    }

    /// Checks one window alignment; `true` means the alignment is
    /// proven impossible. `dominance` collects forced dominator values
    /// from surviving full-history alignments (for `F005`).
    fn alignment_untestable(
        &mut self,
        m: &Mandatory,
        mut w: Window,
        full_history: bool,
        dominance: Option<&mut Vec<(GateId, bool)>>,
    ) -> bool {
        let last = w.w - 1;
        if let Some(launch) = m.launch {
            if last == 0 {
                // A transition needs a previous settled cycle; before
                // pattern 0 every previous pin value is X.
                return true;
            }
            if w.constrain(last - 1, m.site, launch) {
                return true;
            }
        }
        if w.constrain(last, m.site, m.excite) {
            return true;
        }
        // Effect entering a flip-flop D pin escapes into state with no
        // combinational propagation conditions.
        let dff_entry = self.circuit.gate(m.origin).kind() == GateKind::Dff;
        if !dff_entry {
            if !self.cone(m.origin).live {
                return true; // no escape path exists at all
            }
            self.mark_cone(m.origin);
            let dominators: Vec<GateId> = self.cones[m.origin.index()]
                .as_ref()
                .unwrap()
                .dominators
                .clone();
            for &dom in &dominators {
                let gate = self.circuit.gate(dom);
                let GateKind::Comb(f) = gate.kind() else {
                    continue; // the origin may be an input or flip-flop stem
                };
                let Some(side) = side_mask(f) else { continue };
                let effect_pin = match m.effect {
                    Some((g, pin)) if g == dom => Some(pin),
                    _ => None,
                };
                if dom == m.origin && effect_pin.is_none() {
                    continue; // stem origin: divergence is at its output
                }
                for (j, &src) in gate.fanin().iter().enumerate() {
                    if Some(j) == effect_pin {
                        continue;
                    }
                    if effect_pin.is_none() && self.is_in_cone(src) {
                        continue; // may itself carry the effect
                    }
                    if w.constrain(last, src, side) {
                        return true;
                    }
                }
            }
        }
        let graph = full_history.then_some(self.graph);
        if w.propagate(self.circuit, graph) {
            return true;
        }
        if !dff_entry {
            self.mark_cone(m.origin);
            if !self.strong_escape_possible(m, &w) {
                return true;
            }
        }
        if let Some(out) = dominance {
            let cone = self.cones[m.origin.index()].as_ref();
            if let Some(cone) = cone {
                for &dom in &cone.dominators {
                    if dom == m.origin {
                        continue;
                    }
                    match w.at(last, dom.index()) {
                        x if x == B0 => out.push((dom, false)),
                        x if x == B1 => out.push((dom, true)),
                        _ => {}
                    }
                }
            }
        }
        false
    }

    /// D-frontier reachability under the refined masks: a net can carry
    /// a strong (binary-opposite) divergence only if its good value can
    /// be binary, the effect arrives on some cone input, and every
    /// out-of-cone side input can take its exact non-controlling binary
    /// value. If no exit is strong-reachable, the effect cannot escape.
    fn strong_escape_possible(&self, m: &Mandatory, w: &Window) -> bool {
        let last = w.w - 1;
        let cone = self.cones[m.origin.index()].as_ref().unwrap();
        let mut strong = vec![false; cone.nodes.len()];
        let local: std::collections::HashMap<GateId, usize> = cone
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        for (i, &v) in cone.nodes.iter().enumerate() {
            let binary_ok = w.at(last, v.index()) & (B0 | B1) != 0;
            if !binary_ok {
                continue;
            }
            if v == m.origin {
                strong[i] = match m.effect {
                    // Stem divergence: the net itself splits the machines.
                    None => true,
                    Some((gate, pin)) => {
                        debug_assert_eq!(gate, v);
                        self.gate_passes_strong(gate, Some(pin), w, last, |_| true)
                    }
                };
                continue;
            }
            let gate = self.circuit.gate(v);
            if !gate.kind().is_comb() {
                continue;
            }
            let has_strong_feed = gate
                .fanin()
                .iter()
                .any(|s| local.get(s).is_some_and(|&j| j < i && strong[j]));
            if !has_strong_feed {
                continue;
            }
            strong[i] = self.gate_passes_strong(v, None, w, last, |s| self.is_in_cone(s));
        }
        cone.exits
            .iter()
            .any(|e| local.get(e).is_some_and(|&j| strong[j]))
    }

    /// Whether a gate's output could strongly diverge given which pins
    /// may carry the effect (`effect_pin` for the origin, any in-cone
    /// pin otherwise as decided by `effect_like`).
    fn gate_passes_strong(
        &self,
        gate: GateId,
        effect_pin: Option<usize>,
        w: &Window,
        frame: usize,
        effect_like: impl Fn(GateId) -> bool,
    ) -> bool {
        let g = self.circuit.gate(gate);
        let GateKind::Comb(f) = g.kind() else {
            return true; // flip-flop entry is handled by the caller
        };
        let side = side_mask(f);
        for (j, &src) in g.fanin().iter().enumerate() {
            let mask = w.at(frame, src.index());
            let is_effect = match effect_pin {
                Some(pin) => j == pin,
                None => effect_like(src),
            };
            if is_effect {
                // A strongly diverging input has a binary good value.
                if effect_pin == Some(j) && mask & (B0 | B1) == 0 {
                    return false;
                }
                continue;
            }
            match side {
                Some(s) if mask & s == 0 => return false,
                _ => {}
            }
            // XOR/XNOR strong outputs need every input binary in both
            // machines, so even effect-free in-cone pins must allow one.
            if matches!(f, GateFn::Xor | GateFn::Xnor) && mask & (B0 | B1) == 0 {
                return false;
            }
        }
        true
    }

    /// `true` when every window alignment is contradictory: no cycle
    /// can serve as the fault's escape cycle.
    fn untestable(&mut self, m: &Mandatory, dominance: Option<&mut Vec<(GateId, bool)>>) -> bool {
        let frames = self.graph.frames;
        let reach = &self.analysis.reach;
        let full = Window::full_history(self.circuit, reach, frames);
        if !self.alignment_untestable(m, full, true, dominance) {
            return false;
        }
        for k in 0..frames.saturating_sub(1) {
            let win = Window::reset_start(self.circuit, reach, k + 1);
            if !self.alignment_untestable(m, win, false, None) {
                return false;
            }
        }
        true
    }
}

/// An `F005` implication-implied dominance pair: every test detecting
/// `fault` forces `implied`'s excitation at the shared dominator, so
/// `implied` dominates `fault`. Analyze-only — dominance does not
/// preserve per-pattern behaviour, so it never prunes (the same caveat
/// as the structural dominance collapse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DominancePair {
    /// The dominated fault.
    pub fault: StuckAt,
    /// The dominator net the effect must cross.
    pub through: GateId,
    /// The stuck fault whose detection is implied.
    pub implied: StuckAt,
}

/// The learned stuck-at pruning: the reduced universe plus the `F005`
/// dominance pairs discovered along the way.
#[derive(Debug, Clone)]
pub struct LearnedStuck {
    /// The pruned universe (base `--prune` plus `F004` conflicts).
    pub universe: PrunedUniverse<StuckAt>,
    /// Implication-implied dominance pairs (`F005`, analyze-only).
    pub dominance: Vec<DominancePair>,
}

/// Extends [`crate::prune_stuck_at`] with conflict-driven untestability:
/// every class whose representative's mandatory assignments are
/// contradictory under the implication closure is additionally pruned
/// as [`PruneReason::ConflictUntestable`]. The expansion contract is
/// unchanged — expanded reports stay byte-identical to full runs.
pub fn prune_stuck_at_learned(
    circuit: &Circuit,
    analysis: &CircuitAnalysis,
    graph: &ImplicationGraph,
) -> LearnedStuck {
    let base = crate::analyze::prune_stuck_at(circuit, analysis);
    let mut ctx = LearnContext::new(circuit, analysis, graph);
    let mut dominance = Vec::new();
    let mut conflicted = vec![false; base.sim.len()];
    for (idx, &rep) in base.sim.iter().enumerate() {
        let m = ctx.stuck_mandatory(rep);
        let mut forced = Vec::new();
        if ctx.untestable(&m, Some(&mut forced)) {
            conflicted[idx] = true;
        } else {
            for (through, good) in forced {
                dominance.push(DominancePair {
                    fault: rep,
                    through,
                    implied: StuckAt::output(through, !good),
                });
            }
        }
    }
    let universe = rebuild_with_conflicts(base, &conflicted);
    LearnedStuck {
        universe,
        dominance,
    }
}

/// Extends [`crate::prune_transition`] with conflict-driven
/// untestability over the launch (`frame −1`) and capture (escape
/// frame) mandatory assignments.
pub fn prune_transition_learned(
    circuit: &Circuit,
    analysis: &CircuitAnalysis,
    graph: &ImplicationGraph,
) -> PrunedUniverse<TransitionFault> {
    let base = crate::analyze::prune_transition(circuit, analysis);
    let mut ctx = LearnContext::new(circuit, analysis, graph);
    let mut conflicted = vec![false; base.sim.len()];
    for (idx, &f) in base.sim.iter().enumerate() {
        let m = ctx.transition_mandatory(f);
        if ctx.untestable(&m, None) {
            conflicted[idx] = true;
        }
    }
    rebuild_with_conflicts(base, &conflicted)
}

/// Appends the learning findings to a report: one `F005` row per
/// implication-implied dominance pair. (`F004` rows come from
/// [`crate::analysis_findings`], which maps
/// [`PruneReason::ConflictUntestable`] fates to the dedicated code.)
pub fn learn_findings(
    circuit: &Circuit,
    learned: &LearnedStuck,
    prov: Option<&BenchProvenance>,
    report: &mut Report,
) {
    for pair in &learned.dominance {
        report.add(
            RuleCode::ImplicationDominance,
            span_of(prov, pair.fault.site.gate()),
            format!(
                "every test for {} forces {}; the latter dominates (analyze-only)",
                pair.fault.describe(circuit),
                pair.implied.describe(circuit),
            ),
        );
    }
}

/// Drops the flagged simulated faults from a pruned universe, remapping
/// fates and stats while preserving enumeration order.
fn rebuild_with_conflicts<F: Copy>(
    base: PrunedUniverse<F>,
    conflicted: &[bool],
) -> PrunedUniverse<F> {
    let mut remap = vec![u32::MAX; base.sim.len()];
    let mut sim = Vec::new();
    for (old, &f) in base.sim.iter().enumerate() {
        if !conflicted[old] {
            remap[old] = sim.len() as u32;
            sim.push(f);
        }
    }
    let mut stats = base.stats;
    let fate: Vec<FaultFate> = base
        .fate
        .iter()
        .map(|fate| match *fate {
            FaultFate::Sim(old) if conflicted[old as usize] => {
                stats.conflict += 1;
                FaultFate::Pruned(PruneReason::ConflictUntestable)
            }
            FaultFate::Sim(old) => FaultFate::Sim(remap[old as usize]),
            pruned @ FaultFate::Pruned(_) => pruned,
        })
        .collect();
    stats.sim = sim.len();
    PrunedUniverse {
        full: base.full,
        sim,
        fate,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze_circuit, prune_stuck_at, prune_transition};
    use cfs_netlist::parse_bench;

    fn setup(src: &str) -> (Circuit, CircuitAnalysis, ImplicationGraph) {
        let c = parse_bench("t", src).unwrap();
        let a = analyze_circuit(&c);
        let g = ImplicationGraph::build(&c, &a, LearnOptions::default());
        (c, a, g)
    }

    #[test]
    fn direct_implications_follow_gate_semantics() {
        let (c, _, g) = setup("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
        let (a_id, y) = (c.find("a").unwrap(), c.find("y").unwrap());
        let imps = g.implications_of(a_id, false);
        assert!(
            imps.iter()
                .any(|i| i.target == y && !i.value && i.delta == 0),
            "a=0 must imply y=0: {imps:?}"
        );
        let imps = g.implications_of(y, true);
        assert!(
            imps.iter().any(|i| i.target == a_id && i.value),
            "y=1 must imply a=1: {imps:?}"
        );
    }

    #[test]
    fn implications_cross_flip_flops_with_deltas() {
        let (c, _, g) = setup("INPUT(a)\nOUTPUT(q)\nna = NOT(a)\nq = DFF(na)\n");
        let (a_id, q) = (c.find("a").unwrap(), c.find("q").unwrap());
        // q=1 at t implies na=1 at t, hence a=0 at t... na is one frame
        // back through the flop: q=1@t → na=1@t−1 → a=0@t−1.
        let imps = g.implications_of(q, true);
        assert!(
            imps.iter()
                .any(|i| i.target == a_id && !i.value && i.delta == -1),
            "q=1 must imply a=0 one frame back: {imps:?}"
        );
    }

    #[test]
    fn xor_gates_contribute_no_direct_edges() {
        let (c, _, g) = setup("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n");
        assert!(g.implications_of(c.find("a").unwrap(), true).is_empty());
        assert_eq!(g.num_direct(), 0);
    }

    #[test]
    fn textbook_redundancy_is_conflict_untestable() {
        // y = OR(a, AND(a, b)) is just a: the AND output stuck-at-0
        // needs a=1 to excite and a=0 to propagate through the OR.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(a, m)\n";
        let (c, a, g) = setup(src);
        let base = prune_stuck_at(&c, &a);
        let learned = prune_stuck_at_learned(&c, &a, &g);
        learned.universe.validate().unwrap();
        let m = c.find("m").unwrap();
        let i = learned
            .universe
            .full
            .iter()
            .position(|f| *f == StuckAt::output(m, false))
            .unwrap();
        assert_eq!(
            learned.universe.fate[i],
            FaultFate::Pruned(PruneReason::ConflictUntestable),
            "the classic redundant fault must be F004-pruned"
        );
        assert!(
            learned.universe.stats.sim < base.stats.sim,
            "learning must shrink the simulated set: {:?} vs {:?}",
            learned.universe.stats,
            base.stats
        );
        assert_eq!(learned.universe.full, base.full, "enumeration order kept");
    }

    #[test]
    fn testable_faults_survive_learning() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
        let (c, a, g) = setup(src);
        let learned = prune_stuck_at_learned(&c, &a, &g);
        learned.universe.validate().unwrap();
        assert_eq!(
            learned.universe.stats.conflict, 0,
            "a free NAND has no redundancy: {:?}",
            learned.universe.stats
        );
    }

    #[test]
    fn transition_learning_prunes_the_same_redundancy() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(a, m)\n";
        let (c, a, g) = setup(src);
        let base = prune_transition(&c, &a);
        let learned = prune_transition_learned(&c, &a, &g);
        learned.validate().unwrap();
        // Both transition faults on y's m pin need m to flip while a=0,
        // but m=1 forces a=1: conflict.
        assert!(
            learned.stats.conflict > 0,
            "transition redundancy missed: {:?}",
            learned.stats
        );
        assert!(learned.stats.sim < base.stats.sim);
    }

    #[test]
    fn sequential_conflict_crosses_frames() {
        // q latches a, and y = AND(q, na) needs q=1 (so a=1 one frame
        // earlier) and na=1 (a=0 now) — satisfiable across frames, so
        // the fault y stuck-at-0 must SURVIVE. The point: cross-frame
        // reasoning must not over-prune.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\nq = DFF(a)\ny = AND(q, na)\n";
        let (c, a, g) = setup(src);
        let learned = prune_stuck_at_learned(&c, &a, &g);
        learned.universe.validate().unwrap();
        let y = c.find("y").unwrap();
        let i = learned
            .universe
            .full
            .iter()
            .position(|f| *f == StuckAt::output(y, false))
            .unwrap();
        assert!(
            matches!(learned.universe.fate[i], FaultFate::Sim(_)),
            "cross-frame satisfiable fault must not be pruned"
        );
    }

    #[test]
    fn dominance_pairs_point_at_forced_dominators() {
        // Effect of a fault at m must cross y; when the engine forces
        // y's good value the pair is reported, never pruned.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(a, m)\n";
        let (c, a, g) = setup(src);
        let learned = prune_stuck_at_learned(&c, &a, &g);
        for pair in &learned.dominance {
            assert_ne!(pair.fault.site.gate(), pair.through);
            assert_eq!(pair.implied.site.gate(), pair.through);
        }
    }

    #[test]
    fn learned_universe_is_a_subset_of_the_base() {
        for name in ["s27", "s298g"] {
            let c = if name == "s27" {
                cfs_netlist::data::s27()
            } else {
                cfs_netlist::generate::benchmark(name).unwrap()
            };
            let a = analyze_circuit(&c);
            let g = ImplicationGraph::build(&c, &a, LearnOptions::default());
            let base = prune_stuck_at(&c, &a);
            let learned = prune_stuck_at_learned(&c, &a, &g);
            learned.universe.validate().unwrap();
            assert_eq!(learned.universe.full, base.full);
            assert!(learned.universe.stats.sim <= base.stats.sim);
            for f in &learned.universe.sim {
                assert!(base.sim.contains(f), "{name}: learning added a fault");
            }
            let tb = prune_transition(&c, &a);
            let tl = prune_transition_learned(&c, &a, &g);
            tl.validate().unwrap();
            assert!(tl.stats.sim <= tb.stats.sim, "{name}");
        }
    }
}
