//! Static change-impact analysis between two netlists: the structural
//! diff, the affected-cone fixpoint, and the fault classification behind
//! `fsim impact` and `--incremental` re-simulation.
//!
//! Given a *base* circuit (with a recorded baseline fault report) and an
//! *edited* circuit, the pass answers: which faults of the edited circuit
//! could the edit possibly have changed? Everything else provably keeps
//! its baseline fate — same status, same first-detection pattern — and
//! need not be re-simulated.
//!
//! The argument, in three steps (DESIGN.md has the full version):
//!
//! 1. **Seeds.** Every gate named by the structural diff (added, removed,
//!    retyped, rewired, or an output-tap change) is a seed *in each
//!    circuit where its name exists*.
//! 2. **Forward closure `A`.** The set of nodes reachable from a seed
//!    over fanout edges, crossing DFF boundaries (a DFF is an ordinary
//!    node of the reachability graph). A node outside `A` has no edited
//!    gate anywhere in its temporal fanin cone, so its good value is
//!    identical in both circuits on every cycle.
//! 3. **Backward closure `B` of the cone `A ∩ observable`.** A fault's
//!    fate depends only on its detection region — the forward paths from
//!    its gate to the primary outputs — and the good values feeding that
//!    region. If a fault's gate is outside `B` in *both* circuits, no
//!    forward path from it meets a changed node in either, so its whole
//!    detection region is structurally identical with identical good
//!    values, and its fate transfers verbatim.
//!
//! Computing `B` on both circuits and taking the union is essential, not
//! defensive: an edit can *disconnect* logic (`y = OR(g, h)` rewired to
//! `y = OR(h, h)` leaves `g` with no edited gate downstream in the edited
//! circuit), and only the base-side closure sees the path that used to
//! exist.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use cfs_faults::{
    enumerate_stuck_at, enumerate_transition, FaultSite, FaultStatus, ImpactFate, ImpactStats,
    ImpactUniverse, StuckAt, TransitionFault,
};
use cfs_netlist::{BenchProvenance, Circuit, GateId, GateKind};

use crate::analyze::observable_nodes;
use crate::diag::{Report, RuleCode, Span};

/// What changed about one named signal between the base and edited
/// netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditKind {
    /// The gate exists only in the edited circuit.
    Added,
    /// The gate exists only in the base circuit.
    Removed,
    /// The gate exists in both but its kind (function or role) differs.
    Retyped {
        /// Kind in the base circuit.
        from: GateKind,
        /// Kind in the edited circuit.
        to: GateKind,
    },
    /// Same kind, different fanin signals (names or pin order).
    Rewired {
        /// Fanin signal names in the base circuit, in pin order.
        from: Vec<String>,
        /// Fanin signal names in the edited circuit, in pin order.
        to: Vec<String>,
    },
    /// The edited circuit taps this signal as a primary output; the base
    /// does not.
    OutputAdded,
    /// The base circuit taps this signal as a primary output; the edited
    /// does not.
    OutputRemoved,
}

impl EditKind {
    /// Short kebab-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            EditKind::Added => "added",
            EditKind::Removed => "removed",
            EditKind::Retyped { .. } => "retyped",
            EditKind::Rewired { .. } => "rewired",
            EditKind::OutputAdded => "output-added",
            EditKind::OutputRemoved => "output-removed",
        }
    }
}

/// One entry of the structural diff, keyed by signal name with the
/// defining source lines on both sides when provenance is available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistEdit {
    /// The signal the edit is about.
    pub name: String,
    /// What changed.
    pub kind: EditKind,
    /// 1-based defining line in the base source, if known.
    pub base_line: Option<usize>,
    /// 1-based defining line in the edited source, if known.
    pub edited_line: Option<usize>,
}

/// The structural diff of two netlists.
#[derive(Debug, Clone, Default)]
pub struct NetlistDiff {
    /// Every edit, one per changed signal (gate edits in base-then-edited
    /// id order, output-tap edits after, in name order).
    pub edits: Vec<NetlistEdit>,
    /// Whether the primary-input name sequence differs. Patterns are
    /// positional PI vectors, so this invalidates any baseline report.
    pub inputs_changed: bool,
}

impl NetlistDiff {
    /// Whether the two circuits are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty() && !self.inputs_changed
    }
}

/// Computes the structural diff of two circuits, keyed by signal name.
///
/// Provenance tables (from
/// [`parse_bench_with_provenance`](cfs_netlist::parse_bench_with_provenance))
/// attach defining source lines to each edit when available.
pub fn diff_netlists(
    base: &Circuit,
    edited: &Circuit,
    base_prov: Option<&BenchProvenance>,
    edited_prov: Option<&BenchProvenance>,
) -> NetlistDiff {
    let base_ids: HashMap<&str, GateId> = name_map(base);
    let edited_ids: HashMap<&str, GateId> = name_map(edited);
    let line_in = |prov: Option<&BenchProvenance>, id: Option<GateId>| -> Option<usize> {
        prov.zip(id).and_then(|(p, id)| p.line_of(id))
    };
    let mut edits = Vec::new();
    for (i, g) in base.gates().iter().enumerate() {
        let bid = GateId::from_index(i);
        let kind = match edited_ids.get(g.name()) {
            None => Some((EditKind::Removed, None)),
            Some(&eid) => {
                let eg = edited.gate(eid);
                if g.kind() == eg.kind() {
                    let from = fanin_names(base, g.fanin());
                    let to = fanin_names(edited, eg.fanin());
                    (from != to).then_some((EditKind::Rewired { from, to }, Some(eid)))
                } else {
                    Some((
                        EditKind::Retyped {
                            from: g.kind(),
                            to: eg.kind(),
                        },
                        Some(eid),
                    ))
                }
            }
        };
        if let Some((kind, eid)) = kind {
            edits.push(NetlistEdit {
                name: g.name().to_owned(),
                kind,
                base_line: line_in(base_prov, Some(bid)),
                edited_line: line_in(edited_prov, eid),
            });
        }
    }
    for (i, g) in edited.gates().iter().enumerate() {
        if !base_ids.contains_key(g.name()) {
            edits.push(NetlistEdit {
                name: g.name().to_owned(),
                kind: EditKind::Added,
                base_line: None,
                edited_line: line_in(edited_prov, Some(GateId::from_index(i))),
            });
        }
    }
    // Output taps as a multiset of tapped signal names: tap order cannot
    // change any fault's fate, multiplicity and membership can.
    let mut taps: BTreeMap<&str, i32> = BTreeMap::new();
    for &id in base.outputs() {
        *taps.entry(base.gate(id).name()).or_default() += 1;
    }
    for &id in edited.outputs() {
        *taps.entry(edited.gate(id).name()).or_default() -= 1;
    }
    for (name, delta) in taps {
        if delta == 0 {
            continue;
        }
        let kind = if delta > 0 {
            EditKind::OutputRemoved
        } else {
            EditKind::OutputAdded
        };
        edits.push(NetlistEdit {
            name: name.to_owned(),
            kind,
            base_line: line_in(base_prov, base_ids.get(name).copied()),
            edited_line: line_in(edited_prov, edited_ids.get(name).copied()),
        });
    }
    let base_inputs: Vec<&str> = base
        .inputs()
        .iter()
        .map(|&id| base.gate(id).name())
        .collect();
    let edited_inputs: Vec<&str> = edited
        .inputs()
        .iter()
        .map(|&id| edited.gate(id).name())
        .collect();
    NetlistDiff {
        edits,
        inputs_changed: base_inputs != edited_inputs,
    }
}

/// The affected-cone result: which gate names must re-simulate, and how
/// the cones looked on each side.
#[derive(Debug, Clone)]
pub struct ImpactAnalysis {
    /// The structural diff the analysis ran on.
    pub diff: NetlistDiff,
    /// Union over both circuits of the backward closure of each affected
    /// cone, plus every edited gate name. A fault transfers iff its gate
    /// name is *not* in this set.
    pub affected_names: BTreeSet<String>,
    /// Nodes of the base circuit in `A ∩ observable`.
    pub base_cone_nodes: usize,
    /// Nodes of the edited circuit in `A ∩ observable`.
    pub edited_cone_nodes: usize,
    /// The diff is non-empty but its cone reaches no primary output in
    /// either circuit (`I001`): every unedited fault transfers.
    pub disconnected: bool,
}

/// Runs the affected-cone fixpoint over both circuits for `diff`.
pub fn impact_analysis(base: &Circuit, edited: &Circuit, diff: NetlistDiff) -> ImpactAnalysis {
    let (base_cone_nodes, base_names) = affected_in(base, &diff);
    let (edited_cone_nodes, edited_names) = affected_in(edited, &diff);
    let mut affected_names = base_names;
    affected_names.extend(edited_names);
    // Every edited gate re-simulates unconditionally: added gates have no
    // baseline fault to transfer from, and removed/retyped/rewired gates
    // changed the very structure the transfer key relies on.
    affected_names.extend(diff.edits.iter().map(|e| e.name.clone()));
    let disconnected = !diff.edits.is_empty() && base_cone_nodes == 0 && edited_cone_nodes == 0;
    ImpactAnalysis {
        diff,
        affected_names,
        base_cone_nodes,
        edited_cone_nodes,
        disconnected,
    }
}

/// One circuit's side of the fixpoint: seeds → forward closure `A`
/// (crossing DFFs) → cone `A ∩ observable` → backward closure `B`.
/// Returns the cone size and the names of `B`.
///
/// Both worklists mark a node at most once before expanding it, so each
/// terminates after at most `num_nodes` expansions — the DFF-crossing
/// fixpoint needs no per-cycle iteration because reachability, unlike
/// value propagation, is monotone over the static edge set.
fn affected_in(circuit: &Circuit, diff: &NetlistDiff) -> (usize, BTreeSet<String>) {
    let ids = name_map(circuit);
    let n = circuit.num_nodes();
    let mut forward = vec![false; n];
    let mut stack: Vec<GateId> = diff
        .edits
        .iter()
        .filter_map(|e| ids.get(e.name.as_str()).copied())
        .collect();
    while let Some(id) = stack.pop() {
        if forward[id.index()] {
            continue;
        }
        forward[id.index()] = true;
        stack.extend(circuit.gate(id).fanout().iter().copied());
    }
    let observable = observable_nodes(circuit);
    let cone: Vec<GateId> = (0..n)
        .filter(|&i| forward[i] && observable[i])
        .map(GateId::from_index)
        .collect();
    let cone_nodes = cone.len();
    let mut back = vec![false; n];
    let mut stack = cone;
    while let Some(id) = stack.pop() {
        if back[id.index()] {
            continue;
        }
        back[id.index()] = true;
        stack.extend(circuit.gate(id).fanin().iter().copied());
    }
    let names = (0..n)
        .filter(|&i| back[i])
        .map(|i| circuit.gates()[i].name().to_owned())
        .collect();
    (cone_nodes, names)
}

fn name_map(circuit: &Circuit) -> HashMap<&str, GateId> {
    circuit
        .gates()
        .iter()
        .enumerate()
        .map(|(i, g)| (g.name(), GateId::from_index(i)))
        .collect()
}

fn fanin_names(circuit: &Circuit, fanin: &[GateId]) -> Vec<String> {
    fanin
        .iter()
        .map(|&id| circuit.gate(id).name().to_owned())
        .collect()
}

/// Identity of a fault across circuits: gate *name* (ids shift under
/// edits), pin (`u16::MAX` for an output-stem fault), and polarity/edge.
type TransferKey = (String, u16, u8);

fn stuck_key(circuit: &Circuit, f: &StuckAt) -> TransferKey {
    let (gate, pin) = match f.site {
        FaultSite::Output { gate } => (gate, u16::MAX),
        FaultSite::Pin { gate, pin } => (gate, u16::from(pin)),
    };
    (
        circuit.gate(gate).name().to_owned(),
        pin,
        u8::from(f.stuck_at_one),
    )
}

// By reference to match the `fn(&Circuit, &F)` shape `classify` expects.
#[allow(clippy::trivially_copy_pass_by_ref)]
fn transition_key(circuit: &Circuit, f: &TransitionFault) -> TransferKey {
    (
        circuit.gate(f.gate).name().to_owned(),
        u16::from(f.pin),
        u8::from(f.edge == cfs_faults::Edge::Fall),
    )
}

/// Splits the edited circuit's full stuck-at universe into affected and
/// transferred faults under `analysis`.
pub fn classify_stuck_at(
    base: &Circuit,
    edited: &Circuit,
    analysis: &ImpactAnalysis,
) -> ImpactUniverse<StuckAt> {
    classify(
        base,
        edited,
        analysis,
        enumerate_stuck_at(base),
        enumerate_stuck_at(edited),
        stuck_key,
        |f| f.site.gate(),
    )
}

/// Splits the edited circuit's full transition-fault universe into
/// affected and transferred faults under `analysis`.
pub fn classify_transition(
    base: &Circuit,
    edited: &Circuit,
    analysis: &ImpactAnalysis,
) -> ImpactUniverse<TransitionFault> {
    classify(
        base,
        edited,
        analysis,
        enumerate_transition(base),
        enumerate_transition(edited),
        transition_key,
        |f| f.gate,
    )
}

fn classify<F: Copy>(
    base: &Circuit,
    edited: &Circuit,
    analysis: &ImpactAnalysis,
    base_faults: Vec<F>,
    edited_faults: Vec<F>,
    key: fn(&Circuit, &F) -> TransferKey,
    gate_of: fn(&F) -> GateId,
) -> ImpactUniverse<F> {
    if analysis.diff.inputs_changed {
        // The baseline patterns do not replay (I002): nothing transfers.
        return ImpactUniverse::all_affected(edited_faults, base_faults.len());
    }
    let baseline: HashMap<TransferKey, u32> = base_faults
        .iter()
        .enumerate()
        .map(|(i, f)| (key(base, f), i as u32))
        .collect();
    let mut affected = Vec::new();
    let mut fate = Vec::with_capacity(edited_faults.len());
    let mut transferred = 0usize;
    for f in &edited_faults {
        let name = edited.gate(gate_of(f)).name();
        // An unaffected gate is structurally unchanged, so its faults
        // always resolve in the baseline map; a miss falls back to
        // re-simulation, which is sound unconditionally.
        let transfer = if analysis.affected_names.contains(name) {
            None
        } else {
            baseline.get(&key(edited, f)).copied()
        };
        match transfer {
            Some(idx) => {
                fate.push(ImpactFate::Transfer(idx));
                transferred += 1;
            }
            None => {
                fate.push(ImpactFate::Resim(affected.len() as u32));
                affected.push(*f);
            }
        }
    }
    let stats = ImpactStats {
        full: edited_faults.len(),
        affected: affected.len(),
        transferred,
        baseline_full: base_faults.len(),
    };
    let universe = ImpactUniverse {
        full: edited_faults,
        affected,
        fate,
        stats,
    };
    debug_assert!(universe.validate().is_ok());
    universe
}

/// Reports the degenerate-edit findings of an impact analysis: `I002`
/// when the primary inputs changed (the baseline cannot replay) and
/// `I001` when a non-empty diff reaches no primary output in either
/// circuit (every unedited fault transfers).
pub fn impact_findings(analysis: &ImpactAnalysis, report: &mut Report) {
    let span_of = |e: &NetlistEdit| -> Option<Span> {
        e.edited_line
            .or(e.base_line)
            .map(|line| Span { line, col: 1 })
    };
    if analysis.diff.inputs_changed {
        report.add(
            RuleCode::BaselineInvalidated,
            None,
            "primary inputs differ between base and edited circuit; baseline patterns \
             cannot replay, every fault must re-simulate",
        );
    }
    if analysis.disconnected {
        let span = analysis.diff.edits.first().and_then(span_of);
        report.add(
            RuleCode::ConeDisconnectedEdit,
            span,
            format!(
                "{} edit(s) reach no primary output in either circuit; every fault \
                 outside the edited gates keeps its baseline fate",
                analysis.diff.edits.len()
            ),
        );
    }
}

fn status_text(s: FaultStatus) -> String {
    match s {
        FaultStatus::Undetected => "undetected".to_owned(),
        FaultStatus::Untestable => "untestable".to_owned(),
        FaultStatus::Detected { pattern } => format!("detected at pattern {pattern}"),
    }
}

/// Whether two statuses tell the same detection story. `Undetected` and
/// `Untestable` are interchangeable (both mean "no pattern detected it";
/// only static analysis distinguishes them); detections must agree on the
/// first-detection pattern.
fn statuses_agree(a: FaultStatus, b: FaultStatus) -> bool {
    match (a, b) {
        (FaultStatus::Detected { pattern: p }, FaultStatus::Detected { pattern: q }) => p == q,
        (FaultStatus::Detected { .. }, _) | (_, FaultStatus::Detected { .. }) => false,
        _ => true,
    }
}

/// The `F003`-style internal soundness cross-check (`I003`): compares an
/// incremental run's expanded statuses against a cold full re-simulation
/// of the edited circuit and reports every disagreement. A mismatch on a
/// transferred fault means the affected cone was unsound; on a
/// re-simulated fault it means the expansion machinery is broken. Either
/// way it is a checker bug, never a user error.
///
/// Returns the number of mismatches.
pub fn cross_check_fates<F: Copy>(
    universe: &ImpactUniverse<F>,
    incremental: &[FaultStatus],
    cold: &[FaultStatus],
    report: &mut Report,
) -> usize {
    assert_eq!(incremental.len(), universe.full.len());
    assert_eq!(cold.len(), universe.full.len());
    let mut mismatches = 0;
    for (i, (&inc, &full)) in incremental.iter().zip(cold.iter()).enumerate() {
        if statuses_agree(inc, full) {
            continue;
        }
        mismatches += 1;
        let provenance = match universe.fate[i] {
            ImpactFate::Transfer(idx) => format!("transferred from baseline fault #{idx}"),
            ImpactFate::Resim(idx) => format!("re-simulated as affected fault #{idx}"),
        };
        report.add(
            RuleCode::FateTransferMismatch,
            None,
            format!(
                "fault #{i} ({provenance}) is {} incrementally but {} in a cold full run",
                status_text(inc),
                status_text(full)
            ),
        );
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_netlist::{parse_bench, parse_bench_with_provenance};

    fn c(src: &str) -> Circuit {
        parse_bench("t", src).unwrap()
    }

    const TWO_CONES: &str =
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n";

    #[test]
    fn identical_circuits_diff_empty() {
        let base = c(TWO_CONES);
        let edited = c(TWO_CONES);
        let diff = diff_netlists(&base, &edited, None, None);
        assert!(diff.is_empty());
        let analysis = impact_analysis(&base, &edited, diff);
        assert!(analysis.affected_names.is_empty());
        let u = classify_stuck_at(&base, &edited, &analysis);
        u.validate().unwrap();
        assert_eq!(u.stats.affected, 0);
        assert_eq!(u.stats.transferred, u.stats.full);
    }

    #[test]
    fn retype_is_detected_with_provenance() {
        let (base, bp) = parse_bench_with_provenance("t", TWO_CONES).unwrap();
        let edited_src = TWO_CONES.replace("y = AND(a, b)", "y = NAND(a, b)");
        let (edited, ep) = parse_bench_with_provenance("t", &edited_src).unwrap();
        let diff = diff_netlists(&base, &edited, Some(&bp), Some(&ep));
        assert_eq!(diff.edits.len(), 1);
        let e = &diff.edits[0];
        assert_eq!(e.name, "y");
        assert!(matches!(e.kind, EditKind::Retyped { .. }));
        assert_eq!(e.base_line, Some(5));
        assert_eq!(e.edited_line, Some(5));
        assert!(!diff.inputs_changed);
    }

    #[test]
    fn retype_affects_its_cone_but_not_the_sibling() {
        let base = c(TWO_CONES);
        let edited = c(&TWO_CONES.replace("y = AND(a, b)", "y = NAND(a, b)"));
        let diff = diff_netlists(&base, &edited, None, None);
        let analysis = impact_analysis(&base, &edited, diff);
        // Backward closure of {y} pulls in the PIs; the sibling cone z
        // stays out.
        assert!(analysis.affected_names.contains("y"));
        assert!(analysis.affected_names.contains("a"));
        assert!(analysis.affected_names.contains("b"));
        assert!(!analysis.affected_names.contains("z"));
        assert!(!analysis.disconnected);

        let u = classify_stuck_at(&base, &edited, &analysis);
        u.validate().unwrap();
        assert!(u.stats.affected > 0);
        assert!(
            u.stats.affected < u.stats.full,
            "z's faults must transfer: {:?}",
            u.stats
        );
        // z's faults transfer onto the matching baseline indices: with an
        // unchanged universe shape, transfer is the identity map.
        assert_eq!(u.stats.baseline_full, u.stats.full);
        for (i, fate) in u.fate.iter().enumerate() {
            if let ImpactFate::Transfer(idx) = *fate {
                assert_eq!(idx as usize, i);
            }
        }
    }

    #[test]
    fn rewire_and_add_remove_are_detected() {
        let base = c(TWO_CONES);
        // z rewired (b -> y), plus a brand-new gate w consuming y.
        let edited = c(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(w)\ny = AND(a, b)\nz = OR(a, y)\nw = NOT(z)\n",
        );
        let diff = diff_netlists(&base, &edited, None, None);
        let kinds: Vec<(&str, &'static str)> = diff
            .edits
            .iter()
            .map(|e| (e.name.as_str(), e.kind.label()))
            .collect();
        assert!(kinds.contains(&("z", "rewired")), "{kinds:?}");
        assert!(kinds.contains(&("w", "added")), "{kinds:?}");
        assert!(kinds.contains(&("w", "output-added")), "{kinds:?}");
        assert!(kinds.contains(&("z", "output-removed")), "{kinds:?}");
    }

    #[test]
    fn disconnecting_rewire_keeps_base_side_cone() {
        // The edit disconnects g from y: only the base-side closure still
        // sees g feeding an output, so g must re-simulate (its detected
        // faults become undetectable).
        let base = c("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = NOT(a)\nh = NOT(b)\ny = OR(g, h)\n");
        let edited = c("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = NOT(a)\nh = NOT(b)\ny = OR(h, h)\n");
        let diff = diff_netlists(&base, &edited, None, None);
        let analysis = impact_analysis(&base, &edited, diff);
        assert!(
            analysis.affected_names.contains("g"),
            "{:?}",
            analysis.affected_names
        );
        // g survives in the edited universe but may not transfer.
        let u = classify_stuck_at(&base, &edited, &analysis);
        let g = edited.find("g").unwrap();
        for (i, f) in u.full.iter().enumerate() {
            if f.site.gate() == g {
                assert!(matches!(u.fate[i], ImpactFate::Resim(_)), "fault {i}");
            }
        }
    }

    #[test]
    fn cone_crosses_dff_boundaries() {
        // The edited gate g feeds a DFF whose Q feeds the output: the
        // forward closure must cross the flip-flop, and the backward
        // closure must pull the DFF's other cone inputs in.
        let base = c("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = NOT(a)\nq = DFF(g)\ny = AND(q, b)\n");
        let edited = c("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = BUF(a)\nq = DFF(g)\ny = AND(q, b)\n");
        let diff = diff_netlists(&base, &edited, None, None);
        let analysis = impact_analysis(&base, &edited, diff);
        for name in ["g", "q", "y", "a", "b"] {
            assert!(
                analysis.affected_names.contains(name),
                "{name} missing from {:?}",
                analysis.affected_names
            );
        }
        assert!(analysis.base_cone_nodes > 0);
    }

    #[test]
    fn dead_logic_insertion_is_disconnected() {
        let base = c(TWO_CONES);
        let edited = c(&format!(
            "{TWO_CONES}dead1 = NOT(a)\ndead2 = AND(dead1, b)\n"
        ));
        let diff = diff_netlists(&base, &edited, None, None);
        let analysis = impact_analysis(&base, &edited, diff);
        assert!(analysis.disconnected);
        let mut report = Report::new("t");
        impact_findings(&analysis, &mut report);
        assert_eq!(report.with_code(RuleCode::ConeDisconnectedEdit).count(), 1);
        assert!(!report.has_errors(), "I001 is informational");
        // Only the dead gates themselves re-simulate.
        let u = classify_stuck_at(&base, &edited, &analysis);
        u.validate().unwrap();
        let dead: usize = u
            .affected
            .iter()
            .map(|f| edited.gate(f.site.gate()).name())
            .filter(|n| n.starts_with("dead"))
            .count();
        assert_eq!(dead, u.stats.affected);
        assert!(u.stats.transferred > 0);
    }

    #[test]
    fn input_change_invalidates_baseline() {
        let base = c(TWO_CONES);
        let edited = c("INPUT(b)\nINPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n");
        let diff = diff_netlists(&base, &edited, None, None);
        assert!(diff.inputs_changed);
        let analysis = impact_analysis(&base, &edited, diff);
        let mut report = Report::new("t");
        impact_findings(&analysis, &mut report);
        assert_eq!(report.with_code(RuleCode::BaselineInvalidated).count(), 1);
        assert!(report.has_errors());
        let u = classify_stuck_at(&base, &edited, &analysis);
        u.validate().unwrap();
        assert_eq!(u.stats.transferred, 0, "nothing may transfer under I002");
        assert_eq!(u.stats.affected, u.stats.full);
    }

    #[test]
    fn transition_classification_mirrors_stuck() {
        let base = c(TWO_CONES);
        let edited = c(&TWO_CONES.replace("y = AND(a, b)", "y = NAND(a, b)"));
        let diff = diff_netlists(&base, &edited, None, None);
        let analysis = impact_analysis(&base, &edited, diff);
        let u = classify_transition(&base, &edited, &analysis);
        u.validate().unwrap();
        assert!(u.stats.affected > 0);
        assert!(u.stats.affected < u.stats.full, "{:?}", u.stats);
        let z = edited.find("z").unwrap();
        for (i, f) in u.full.iter().enumerate() {
            if f.gate == z {
                assert!(matches!(u.fate[i], ImpactFate::Transfer(_)), "fault {i}");
            }
        }
    }

    #[test]
    fn cross_check_fires_on_seeded_soundness_violation() {
        // A universe that (wrongly) transfers a fault whose fate the cold
        // run contradicts: the I003 cross-check must catch it.
        let universe = ImpactUniverse {
            full: vec![0u8, 1, 2],
            affected: vec![1u8],
            fate: vec![
                ImpactFate::Transfer(0),
                ImpactFate::Resim(0),
                ImpactFate::Transfer(1),
            ],
            stats: ImpactStats {
                full: 3,
                affected: 1,
                transferred: 2,
                baseline_full: 2,
            },
        };
        universe.validate().unwrap();
        let incremental = vec![
            FaultStatus::Detected { pattern: 3 },
            FaultStatus::Undetected,
            FaultStatus::Undetected,
        ];
        let cold = vec![
            FaultStatus::Detected { pattern: 3 },
            FaultStatus::Undetected,
            FaultStatus::Detected { pattern: 7 },
        ];
        let mut report = Report::new("t");
        let n = cross_check_fates(&universe, &incremental, &cold, &mut report);
        assert_eq!(n, 1);
        assert!(report.has_errors());
        let d = report
            .with_code(RuleCode::FateTransferMismatch)
            .next()
            .unwrap();
        assert!(d.message.contains("baseline fault #1"), "{}", d.message);
        assert!(d.message.contains("pattern 7"), "{}", d.message);

        // Agreement (including undetected-vs-untestable) stays silent.
        let mut report = Report::new("t");
        let soft = vec![
            FaultStatus::Detected { pattern: 3 },
            FaultStatus::Untestable,
            FaultStatus::Undetected,
        ];
        let cold_ok = vec![
            FaultStatus::Detected { pattern: 3 },
            FaultStatus::Undetected,
            FaultStatus::Undetected,
        ];
        assert_eq!(
            cross_check_fates(&universe, &soft, &cold_ok, &mut report),
            0
        );
        assert!(report.diagnostics.is_empty());
    }
}
