//! Pre-simulation static analysis for the concurrent fault simulator.
//!
//! The concurrent machinery of Lee & Reddy (DAC 1992) — sorted per-gate
//! fault lists with a terminal sentinel, visible/invisible splitting, macro
//! LUT faults, shard-parallel fault partitions — rests on structural
//! preconditions: acyclic combinational logic, fully driven nets, legal
//! fanout-free regions, sound fault collapse, exact-cover shard plans. This
//! crate checks all of them *before* the event loop runs, and reports
//! violations as [`Diagnostic`]s with stable [`RuleCode`]s, severities, and
//! `.bench` source spans instead of mid-simulation panics.
//!
//! Entry points:
//!
//! * [`check_bench_source`] — everything, over raw `.bench` text. Lenient:
//!   collects every finding rather than stopping at the first.
//! * [`check_circuit`] — everything, over an already-built [`Circuit`]
//!   (built-in benchmarks, generated circuits).
//! * [`check_collapse`] / [`check_macro_cells`] / [`check_shard_partition`]
//!   — the individual fault-model rules, taking plain data so tests can
//!   feed corrupted structures.
//! * [`analyze_circuit`] + [`prune_stuck_at`] / [`prune_transition`] — the
//!   fault-universe analyses (constant propagation, observability, SCOAP),
//!   which prove faults undetectable *before* the first pattern and hand
//!   the simulators a provably equivalent reduced fault set.
//! * [`diff_netlists`] + [`impact_analysis`] + [`classify_stuck_at`] /
//!   [`classify_transition`] — the change-impact pass behind `fsim impact`
//!   and `--incremental` re-simulation: structurally diff two netlists,
//!   run the affected-cone fixpoint over both, and split the edited
//!   circuit's fault universe into re-simulate vs. transfer-from-baseline.
//!
//! | Code | Rule | Severity |
//! |------|------|----------|
//! | S001 | syntax-error | error |
//! | S002 | unknown-gate | error |
//! | S003 | bad-arity | error |
//! | N001 | combinational-cycle | error |
//! | N002 | undriven-net | error |
//! | N003 | dangling-fanout | warning (info for unused inputs) |
//! | N004 | unreachable-gate | warning |
//! | N005 | multiply-driven-net | error |
//! | N006 | missing-io | error |
//! | N007 | constant-net | info |
//! | N008 | never-binary-net | info |
//! | F001 | uncollapsible-fault | error |
//! | F002 | statically-untestable-fault | info |
//! | F003 | observability-mismatch | error |
//! | F004 | conflict-untestable-fault | info |
//! | F005 | implication-dominance | info |
//! | M001 | illegal-macro-region | error |
//! | P001 | non-exact-cover-shard-plan | error |
//! | I001 | cone-disconnected-edit | info |
//! | I002 | baseline-invalidated | error |
//! | I003 | fate-transfer-mismatch | error |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod diag;
mod impact;
mod learn;
mod model_check;
mod netlist_check;

pub use analyze::{
    analysis_findings, analyze_circuit, analyze_circuit_with, observable_nodes, prune_stuck_at,
    prune_transition, stuck_weights, transition_weights, AnalysisOptions, CircuitAnalysis,
};
pub use diag::{Diagnostic, Report, RuleCode, Severity, Span};
pub use learn::{
    learn_findings, prune_stuck_at_learned, prune_transition_learned, DominancePair, Implication,
    ImplicationGraph, LearnOptions, LearnedStuck, DEFAULT_LEARN_FRAMES,
};

pub use impact::{
    classify_stuck_at, classify_transition, cross_check_fates, diff_netlists, impact_analysis,
    impact_findings, EditKind, ImpactAnalysis, NetlistDiff, NetlistEdit,
};
pub use model_check::{
    check_collapse, check_macro_cells, check_macros, check_models, check_shard_partition,
    MacroCellView,
};
pub use netlist_check::check_bench_source;

use cfs_netlist::{write_bench, Circuit};

/// Runs every analysis over an already-built circuit.
///
/// The circuit is serialized with [`write_bench`] and analyzed as source,
/// so spans refer to lines of the canonical serialization (the text `fsim
/// generate` writes) and the structural and model rules behave identically
/// to [`check_bench_source`].
///
/// # Examples
///
/// ```
/// let report = cfs_check::check_circuit(&cfs_netlist::data::s27());
/// assert!(!report.has_errors());
/// ```
pub fn check_circuit(circuit: &Circuit) -> Report {
    check_bench_source(circuit.name(), &write_bench(circuit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_faults::collapse_stuck_at;
    use cfs_netlist::{extract_macros, parse_bench, GateId, DEFAULT_MACRO_MAX_INPUTS};

    fn codes(report: &Report) -> Vec<RuleCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    fn count(report: &Report, code: RuleCode) -> usize {
        report.with_code(code).count()
    }

    // One purpose-built bad netlist per rule code, as the acceptance
    // criteria demand.

    #[test]
    fn s001_syntax_error() {
        let r = check_bench_source("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nwhat is this\n");
        assert_eq!(count(&r, RuleCode::SyntaxError), 1, "{:?}", codes(&r));
        assert!(r.has_errors());
        let d = r.with_code(RuleCode::SyntaxError).next().unwrap();
        assert_eq!(d.span, Some(Span { line: 4, col: 1 }));
    }

    #[test]
    fn s002_unknown_gate() {
        let r = check_bench_source("t", "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n");
        assert_eq!(count(&r, RuleCode::UnknownGate), 1, "{:?}", codes(&r));
        let d = r.with_code(RuleCode::UnknownGate).next().unwrap();
        assert_eq!(d.span, Some(Span { line: 3, col: 5 }));
        assert!(d.message.contains("MAJ"));
    }

    #[test]
    fn s003_bad_arity() {
        let r = check_bench_source("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n");
        assert_eq!(count(&r, RuleCode::BadArity), 1, "{:?}", codes(&r));
        // A flip-flop with two D inputs is the sequential variant.
        let r = check_bench_source("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n");
        assert_eq!(count(&r, RuleCode::BadArity), 1, "{:?}", codes(&r));
    }

    #[test]
    fn n001_combinational_cycle() {
        let r = check_bench_source(
            "t",
            "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(w)\nw = BUF(y)\n",
        );
        assert_eq!(
            count(&r, RuleCode::CombinationalCycle),
            1,
            "{:?}",
            codes(&r)
        );
        let d = r.with_code(RuleCode::CombinationalCycle).next().unwrap();
        assert!(d.message.contains('w') && d.message.contains('y') && d.message.contains('z'));
        // A flip-flop in the loop legalizes it.
        let r = check_bench_source("t", "INPUT(a)\nOUTPUT(y)\ny = AND(a, q)\nq = DFF(y)\n");
        assert_eq!(
            count(&r, RuleCode::CombinationalCycle),
            0,
            "{:?}",
            codes(&r)
        );
        assert!(!r.has_errors());
    }

    #[test]
    fn n001_self_loop() {
        let r = check_bench_source("t", "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n");
        assert_eq!(
            count(&r, RuleCode::CombinationalCycle),
            1,
            "{:?}",
            codes(&r)
        );
    }

    #[test]
    fn n002_undriven_net() {
        let r = check_bench_source("t", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n");
        assert_eq!(count(&r, RuleCode::UndrivenNet), 1, "{:?}", codes(&r));
        let d = r.with_code(RuleCode::UndrivenNet).next().unwrap();
        assert_eq!(d.span, Some(Span { line: 3, col: 12 }));
        // Multiple references to the same ghost: still one finding.
        let r = check_bench_source(
            "t",
            "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\nz = NOT(ghost)\nOUTPUT(z)\n",
        );
        assert_eq!(count(&r, RuleCode::UndrivenNet), 1, "{:?}", codes(&r));
    }

    #[test]
    fn n003_dangling_fanout() {
        let r = check_bench_source("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = BUF(a)\n");
        assert_eq!(count(&r, RuleCode::DanglingFanout), 1, "{:?}", codes(&r));
        let d = r.with_code(RuleCode::DanglingFanout).next().unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(!r.has_errors(), "dangling fanout does not gate simulation");
        // N004 is suppressed for the node already flagged N003.
        assert_eq!(count(&r, RuleCode::UnreachableGate), 0, "{:?}", codes(&r));
    }

    #[test]
    fn n003_unused_input_is_info() {
        let r = check_bench_source("t", "INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NOT(a)\n");
        let d = r.with_code(RuleCode::DanglingFanout).next().unwrap();
        assert_eq!(d.severity, Severity::Info);
        assert_eq!(r.count(Severity::Warning), 0);
    }

    #[test]
    fn n004_unreachable_gate() {
        // `mid` is consumed (by `dead`), so it is not dangling — but no
        // primary output is reachable from it.
        let r = check_bench_source(
            "t",
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nmid = BUF(a)\ndead = NOT(mid)\n",
        );
        assert_eq!(count(&r, RuleCode::UnreachableGate), 1, "{:?}", codes(&r));
        assert_eq!(count(&r, RuleCode::DanglingFanout), 1, "{:?}", codes(&r));
        let d = r.with_code(RuleCode::UnreachableGate).next().unwrap();
        assert!(d.message.contains("mid"));
    }

    #[test]
    fn n005_multiply_driven_net() {
        let r = check_bench_source("t", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\ny = NOT(a)\n");
        assert_eq!(count(&r, RuleCode::MultiplyDrivenNet), 1, "{:?}", codes(&r));
        let d = r.with_code(RuleCode::MultiplyDrivenNet).next().unwrap();
        assert_eq!(d.span.unwrap().line, 4);
        assert!(d.message.contains("line 3"));
    }

    #[test]
    fn n006_missing_io() {
        let r = check_bench_source("t", "INPUT(a)\nb = NOT(a)\n");
        assert_eq!(count(&r, RuleCode::MissingIo), 1, "{:?}", codes(&r));
        let r = check_bench_source("t", "OUTPUT(y)\ny = NOT(z)\n");
        assert!(count(&r, RuleCode::MissingIo) >= 1, "{:?}", codes(&r));
    }

    #[test]
    fn f001_corrupted_collapse() {
        let c = cfs_netlist::data::s27();
        let sound = collapse_stuck_at(&c);
        // Sound collapse: clean.
        let mut r = Report::new("t");
        check_collapse(&c, &sound, None, &mut r);
        assert!(r.diagnostics.is_empty(), "{:?}", codes(&r));
        // Point one fault at an out-of-range class.
        let mut bad = sound.clone();
        bad.class_of[3] = bad.num_classes() + 7;
        let mut r = Report::new("t");
        check_collapse(&c, &bad, None, &mut r);
        // The remap itself fires, and if fault 3 was its class's lowest
        // member the representative rule fires too.
        assert!(
            count(&r, RuleCode::UncollapsibleFault) >= 1,
            "{:?}",
            codes(&r)
        );
        assert!(r
            .with_code(RuleCode::UncollapsibleFault)
            .any(|d| d.message.contains("maps to class")));
        // Swap two representatives: both classes lose their lowest member.
        let mut bad = sound.clone();
        bad.representatives.swap(0, 1);
        let mut r = Report::new("t");
        check_collapse(&c, &bad, None, &mut r);
        assert!(
            count(&r, RuleCode::UncollapsibleFault) >= 1,
            "{:?}",
            codes(&r)
        );
        // Truncate the class map entirely.
        let mut bad = sound;
        bad.class_of.pop();
        let mut r = Report::new("t");
        check_collapse(&c, &bad, None, &mut r);
        assert_eq!(
            count(&r, RuleCode::UncollapsibleFault),
            1,
            "{:?}",
            codes(&r)
        );
    }

    #[test]
    fn m001_corrupted_macro_region() {
        let c = parse_bench(
            "m",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ng = AND(a, b)\nh = NOT(g)\ny = OR(h, c)\n",
        )
        .unwrap();
        let macros = extract_macros(&c, DEFAULT_MACRO_MAX_INPUTS);
        // The real extraction is legal.
        let mut r = Report::new("t");
        check_macros(&c, &macros, DEFAULT_MACRO_MAX_INPUTS, None, &mut r);
        assert!(r.diagnostics.is_empty(), "{:?}", codes(&r));
        // Hand-build one giant "cell" whose internal member h is missing:
        // g's consumer h lives outside the region.
        let id = |n: &str| c.find(n).unwrap();
        let bad = vec![MacroCellView {
            root: id("y"),
            members: vec![id("y"), id("g")],
            support: vec![id("a"), id("b"), id("c")],
        }];
        let mut r = Report::new("t");
        check_macro_cells(&c, &bad, DEFAULT_MACRO_MAX_INPUTS, None, &mut r);
        // h uncovered, g fans out to h outside the region, and the cell
        // draws support it should not — at minimum the first two fire.
        assert!(
            count(&r, RuleCode::IllegalMacroRegion) >= 2,
            "{:?}",
            codes(&r)
        );
        assert!(r
            .with_code(RuleCode::IllegalMacroRegion)
            .any(|d| d.message.contains("not covered")));
        assert!(r
            .with_code(RuleCode::IllegalMacroRegion)
            .any(|d| d.message.contains("fans out")));
    }

    #[test]
    fn m001_internal_primary_output() {
        let c = parse_bench(
            "m",
            "INPUT(a)\nOUTPUT(g)\nOUTPUT(y)\ng = NOT(a)\ny = BUF(g)\n",
        )
        .unwrap();
        let id = |n: &str| c.find(n).unwrap();
        // Illegally fold the PO-tapped g into y's cell.
        let bad = vec![MacroCellView {
            root: id("y"),
            members: vec![id("y"), id("g")],
            support: vec![id("a")],
        }];
        let mut r = Report::new("t");
        check_macro_cells(&c, &bad, DEFAULT_MACRO_MAX_INPUTS, None, &mut r);
        assert!(
            r.with_code(RuleCode::IllegalMacroRegion)
                .any(|d| d.message.contains("primary output")),
            "{:?}",
            codes(&r)
        );
    }

    #[test]
    fn p001_corrupted_partition() {
        // Sound partitions pass.
        let mut r = Report::new("t");
        check_shard_partition("rr", &[vec![0, 2, 4], vec![1, 3]], 5, &mut r);
        assert!(r.diagnostics.is_empty(), "{:?}", codes(&r));
        // A lost fault.
        let mut r = Report::new("t");
        check_shard_partition("rr", &[vec![0, 2], vec![1, 3]], 5, &mut r);
        assert_eq!(
            count(&r, RuleCode::NonExactCoverShardPlan),
            1,
            "{:?}",
            codes(&r)
        );
        // A duplicated fault.
        let mut r = Report::new("t");
        check_shard_partition("rr", &[vec![0, 1, 2], vec![2, 3, 4]], 5, &mut r);
        assert_eq!(
            count(&r, RuleCode::NonExactCoverShardPlan),
            1,
            "{:?}",
            codes(&r)
        );
        // Unbalanced shards.
        let mut r = Report::new("t");
        check_shard_partition("chunk", &[vec![0, 1, 2, 3], vec![4]], 5, &mut r);
        assert_eq!(
            count(&r, RuleCode::NonExactCoverShardPlan),
            1,
            "{:?}",
            codes(&r)
        );
        // Out of range.
        let mut r = Report::new("t");
        check_shard_partition("rr", &[vec![0, 1, 9]], 3, &mut r);
        assert!(
            count(&r, RuleCode::NonExactCoverShardPlan) >= 1,
            "{:?}",
            codes(&r)
        );
    }

    #[test]
    fn clean_circuits_stay_clean() {
        let r = check_circuit(&cfs_netlist::data::s27());
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
        for name in ["s298g", "s526g", "s1238g"] {
            let c = cfs_netlist::generate::benchmark(name).unwrap();
            let r = check_circuit(&c);
            assert!(r.diagnostics.is_empty(), "{name}: {}", r.render_text());
        }
    }

    #[test]
    fn one_run_reports_every_defect() {
        // A netlist with four independent defects: the lenient pass finds
        // all of them in one run.
        let r = check_bench_source(
            "t",
            "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\nz = NOT(w)\nw = BUF(z)\nz = MAJ(a)\n",
        );
        assert_eq!(count(&r, RuleCode::UndrivenNet), 1, "{:?}", codes(&r));
        assert_eq!(
            count(&r, RuleCode::CombinationalCycle),
            1,
            "{:?}",
            codes(&r)
        );
        assert_eq!(count(&r, RuleCode::MultiplyDrivenNet), 1, "{:?}", codes(&r));
        assert_eq!(count(&r, RuleCode::UnknownGate), 1, "{:?}", codes(&r));
    }

    #[test]
    fn provenance_spans_survive_to_model_rules() {
        // A clean source parses; model rules then run with provenance, so
        // the whole pipeline executes without findings.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(y)\ng = AND(a, q)\ny = NAND(g, b)\n";
        let r = check_bench_source("p", src);
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn gate_id_from_index_matches_gates_order() {
        let c = cfs_netlist::data::s27();
        for (i, g) in c.gates().iter().enumerate() {
            assert_eq!(c.gate(GateId::from_index(i)).name(), g.name());
        }
    }
}
