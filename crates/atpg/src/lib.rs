//! Test pattern generation for synchronous sequential circuits.
//!
//! Part of the workspace reproducing *Lee & Reddy, DAC 1992*. Tables 2–4 of
//! the paper feed deterministic test sets into the simulators; this crate
//! regenerates such sets:
//!
//! * [`random_patterns`] / [`weighted_random_patterns`] — the random phase
//!   (and the Table 5 workload),
//! * [`Unrolled`] — time-frame expansion of a sequential circuit,
//! * [`Podem`] — PODEM test generation with multi-site fault injection,
//! * [`generate_tests`] — the sequential ATPG driver (random phase +
//!   deepening frame windows + concurrent-fault-simulation dropping), the
//!   shape of the authors' own generator (paper reference \[14\]).
//!
//! # Examples
//!
//! ```
//! use cfs_atpg::{generate_tests, AtpgOptions};
//! use cfs_faults::collapse_stuck_at;
//! use cfs_netlist::data::s27;
//!
//! let c = s27();
//! let faults = collapse_stuck_at(&c).representatives;
//! let outcome = generate_tests(&c, &faults, AtpgOptions {
//!     random_patterns: 16,
//!     max_frames: 3,
//!     ..Default::default()
//! });
//! assert!(outcome.report.coverage_percent() > 50.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod driver;
mod podem;
mod random;
mod unroll;

pub use driver::{generate_tests, trim_tail, AtpgOptions, AtpgOutcome};
pub use podem::{Podem, PodemResult};
pub use random::{random_fill, random_patterns, weighted_random_patterns};
pub use unroll::Unrolled;
