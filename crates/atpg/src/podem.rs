//! PODEM (path-oriented decision making) test generation over a
//! combinational circuit, with multi-site fault injection so a permanent
//! fault unrolled across time frames is handled naturally.
//!
//! The implementation keeps an explicit good/faulty value pair per net
//! (equivalent to the classical five-valued D-calculus: `D = 1/0`,
//! `D̄ = 0/1`) and re-implies by forward simulation after every decision.

use cfs_faults::{FaultSite, StuckAt};
use cfs_logic::{GateFn, Logic};
use cfs_netlist::{Circuit, GateId};

/// Outcome of a PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemResult {
    /// A detecting primary-input assignment (aligned with
    /// `circuit.inputs()`; unassigned positions are `X`).
    Test(Vec<Logic>),
    /// The decision tree was exhausted: no test exists (within this
    /// circuit — for an unrolled frame window, "no test of this depth").
    Untestable,
    /// The backtrack limit was hit before a conclusion.
    Aborted,
}

/// PODEM test generator for a combinational circuit.
///
/// # Examples
///
/// ```
/// use cfs_atpg::{Podem, PodemResult};
/// use cfs_faults::StuckAt;
/// use cfs_netlist::parse_bench;
///
/// let c = parse_bench("and2", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let y = c.find("y").unwrap();
/// let podem = Podem::new(&c, vec![StuckAt::output(y, false)], 1000);
/// match podem.run() {
///     PodemResult::Test(t) => assert!(t.iter().all(|&v| v == cfs_logic::Logic::One)),
///     other => panic!("{other:?}"),
/// }
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
#[derive(Debug)]
pub struct Podem<'c> {
    circuit: &'c Circuit,
    injections: Vec<StuckAt>,
    /// Per-PI-ordinal: may PODEM assign this input? (Pseudo-PIs of an
    /// unrolled circuit are pinned to `X`.)
    assignable: Vec<bool>,
    backtrack_limit: usize,
    /// Per-node: does the node's input cone contain an assignable PI?
    reaches_assignable: Vec<bool>,
}

impl<'c> Podem<'c> {
    /// Creates a generator with every primary input assignable.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is sequential (PODEM is combinational; unroll
    /// first).
    pub fn new(circuit: &'c Circuit, injections: Vec<StuckAt>, backtrack_limit: usize) -> Self {
        let assignable = vec![true; circuit.num_inputs()];
        Podem::with_assignable(circuit, injections, assignable, backtrack_limit)
    }

    /// Creates a generator with explicit input assignability (unrolled
    /// pseudo-PIs pass `false`).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is sequential or `assignable.len()` differs
    /// from the primary-input count.
    pub fn with_assignable(
        circuit: &'c Circuit,
        injections: Vec<StuckAt>,
        assignable: Vec<bool>,
        backtrack_limit: usize,
    ) -> Self {
        assert_eq!(
            circuit.num_dffs(),
            0,
            "PODEM is combinational: unroll first"
        );
        assert_eq!(assignable.len(), circuit.num_inputs());
        // Static reachability: which nodes can be influenced by an
        // assignable PI (backtrace must not descend into dead cones).
        let mut reaches = vec![false; circuit.num_nodes()];
        for (k, &pi) in circuit.inputs().iter().enumerate() {
            reaches[pi.index()] = assignable[k];
        }
        for &g in circuit.topo_order() {
            reaches[g.index()] = circuit.gate(g).fanin().iter().any(|&s| reaches[s.index()]);
        }
        Podem {
            circuit,
            injections,
            assignable,
            backtrack_limit,
            reaches_assignable: reaches,
        }
    }

    /// Runs the search.
    pub fn run(&self) -> PodemResult {
        let n = self.circuit.num_nodes();
        let num_pis = self.circuit.num_inputs();
        let mut pi_values = vec![Logic::X; num_pis];
        let mut good = vec![Logic::X; n];
        let mut faulty = vec![Logic::X; n];
        // Decision stack: (pi ordinal, value, alternative already tried).
        let mut decisions: Vec<(usize, Logic, bool)> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            self.imply(&pi_values, &mut good, &mut faulty);
            if self.detected(&good, &faulty) {
                return PodemResult::Test(pi_values);
            }
            let next = self
                .objective(&good, &faulty)
                .and_then(|(net, v)| self.backtrace(net, v, &good));
            if let Some((pi, v)) = next {
                decisions.push((pi, v, false));
                pi_values[pi] = v;
                continue;
            }
            // Dead end: undo decisions until an untried alternative.
            loop {
                match decisions.pop() {
                    None => return PodemResult::Untestable,
                    Some((pi, _, true)) => {
                        pi_values[pi] = Logic::X;
                    }
                    Some((pi, v, false)) => {
                        backtracks += 1;
                        if backtracks > self.backtrack_limit {
                            // Give up the whole search (the abort is a
                            // global resource-limit condition).
                            return PodemResult::Aborted;
                        }
                        let alt = !v;
                        pi_values[pi] = alt;
                        decisions.push((pi, alt, true));
                        break;
                    }
                }
            }
        }
    }

    /// Full forward implication: pair simulation with injections.
    fn imply(&self, pi_values: &[Logic], good: &mut [Logic], faulty: &mut [Logic]) {
        for (k, &pi) in self.circuit.inputs().iter().enumerate() {
            good[pi.index()] = pi_values[k];
            faulty[pi.index()] = pi_values[k];
        }
        // PI output injections.
        for inj in &self.injections {
            if let FaultSite::Output { gate } = inj.site {
                if !self.circuit.gate(gate).kind().is_comb() {
                    faulty[gate.index()] = inj.value();
                }
            }
        }
        let mut gbuf = Vec::new();
        let mut fbuf = Vec::new();
        for &g in self.circuit.topo_order() {
            let gate = self.circuit.gate(g);
            gbuf.clear();
            fbuf.clear();
            for &s in gate.fanin() {
                gbuf.push(good[s.index()]);
                fbuf.push(faulty[s.index()]);
            }
            let mut forced_out = None;
            for inj in &self.injections {
                match inj.site {
                    FaultSite::Pin { gate: ig, pin } if ig == g => {
                        fbuf[pin as usize] = inj.value();
                    }
                    FaultSite::Output { gate: ig } if ig == g => {
                        forced_out = Some(inj.value());
                    }
                    _ => {}
                }
            }
            let f = gate.kind().gate_fn().expect("combinational");
            good[g.index()] = f.eval(&gbuf);
            faulty[g.index()] = forced_out.unwrap_or_else(|| f.eval(&fbuf));
        }
    }

    fn detected(&self, good: &[Logic], faulty: &[Logic]) -> bool {
        self.circuit
            .outputs()
            .iter()
            .any(|&po| good[po.index()].detectably_differs(faulty[po.index()]))
    }

    /// Chooses the next objective `(net, desired good value)`.
    fn objective(&self, good: &[Logic], faulty: &[Logic]) -> Option<(GateId, Logic)> {
        // Is there any fault effect (binary difference) in the circuit?
        let effect_exists =
            (0..self.circuit.num_nodes()).any(|i| good[i].detectably_differs(faulty[i]));
        if !effect_exists {
            // Activation: drive some injection site's good side opposite to
            // the stuck value.
            for inj in &self.injections {
                let (net, want) = match inj.site {
                    FaultSite::Output { gate } => (gate, !inj.value()),
                    FaultSite::Pin { gate, pin } => {
                        (self.circuit.gate(gate).fanin()[pin as usize], !inj.value())
                    }
                };
                match good[net.index()] {
                    Logic::X if self.reaches_assignable[net.index()] => return Some((net, want)),
                    _ => continue,
                }
            }
            // Activated pin faults may be blocked inside their own site
            // gate: unblock by setting another input non-controlling.
            for inj in &self.injections {
                let FaultSite::Pin { gate, pin } = inj.site else {
                    continue;
                };
                let driver = self.circuit.gate(gate).fanin()[pin as usize];
                if good[driver.index()] != !inj.value() {
                    continue; // not activated
                }
                let f = self.circuit.gate(gate).kind().gate_fn().expect("comb");
                let want = f.controlling_value().map(|c| !c).unwrap_or(Logic::Zero);
                for (k, &s) in self.circuit.gate(gate).fanin().iter().enumerate() {
                    if k != pin as usize
                        && good[s.index()] == Logic::X
                        && self.reaches_assignable[s.index()]
                    {
                        return Some((s, want));
                    }
                }
            }
            return None;
        }
        // Propagation: pick a D-frontier gate (binary difference on an
        // input, output not yet detectably different) and set one of its X
        // inputs to the non-controlling value.
        for &g in self.circuit.topo_order() {
            let gate = self.circuit.gate(g);
            if good[g.index()].detectably_differs(faulty[g.index()]) {
                continue; // effect already through this gate
            }
            if !good[g.index()].is_binary() || !faulty[g.index()].is_binary() {
                let has_diff_input = gate
                    .fanin()
                    .iter()
                    .any(|&s| good[s.index()].detectably_differs(faulty[s.index()]));
                if !has_diff_input {
                    continue;
                }
                let f = gate.kind().gate_fn().expect("combinational");
                let want = f.controlling_value().map(|c| !c).unwrap_or(Logic::Zero);
                for &s in gate.fanin() {
                    if good[s.index()] == Logic::X && self.reaches_assignable[s.index()] {
                        return Some((s, want));
                    }
                }
            }
        }
        None
    }

    /// Walks an objective back to an unassigned, assignable primary input.
    fn backtrace(
        &self,
        mut net: GateId,
        mut value: Logic,
        good: &[Logic],
    ) -> Option<(usize, Logic)> {
        loop {
            if let Some(k) = self.circuit.inputs().iter().position(|&p| p == net) {
                if self.assignable[k] && good[net.index()] == Logic::X {
                    return Some((k, value));
                }
                return None;
            }
            let gate = self.circuit.gate(net);
            let f = gate.kind().gate_fn().expect("combinational");
            // Choose an X input whose cone reaches an assignable PI.
            let pick = gate
                .fanin()
                .iter()
                .copied()
                .find(|&s| good[s.index()] == Logic::X && self.reaches_assignable[s.index()])?;
            value = input_target(f, value);
            net = pick;
        }
    }
}

/// The value an input should take to steer a gate's output toward `out`.
fn input_target(f: GateFn, out: Logic) -> Logic {
    match f {
        GateFn::Buf => out,
        GateFn::Not => !out,
        GateFn::And => out,   // want 1 ⇒ inputs 1; want 0 ⇒ some input 0
        GateFn::Nand => !out, // want 0 ⇒ inputs 1
        GateFn::Or => out,    // want 1 ⇒ some input 1; want 0 ⇒ inputs 0
        GateFn::Nor => !out,
        GateFn::Xor | GateFn::Xnor => out, // parity: any choice, search fixes it
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_netlist::parse_bench;

    #[test]
    fn trivial_and_gate_tests() {
        let c = parse_bench("a", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = c.find("y").unwrap();
        // y/sa0 needs a=b=1.
        match Podem::new(&c, vec![StuckAt::output(y, false)], 100).run() {
            PodemResult::Test(t) => assert_eq!(t, vec![Logic::One, Logic::One]),
            other => panic!("{other:?}"),
        }
        // Pin 0 sa1 needs a=0, b=1 (propagate through b).
        match Podem::new(&c, vec![StuckAt::pin(y, 0, true)], 100).run() {
            PodemResult::Test(t) => {
                assert_eq!(t[0], Logic::Zero);
                assert_eq!(t[1], Logic::One);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redundant_fault_is_untestable() {
        // y = AND(a, OR(a, b)): OR(a,b)/sa1 is undetectable (a dominates).
        let c = parse_bench(
            "r",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\no = OR(a, b)\ny = AND(a, o)\n",
        )
        .unwrap();
        let o = c.find("o").unwrap();
        let r = Podem::new(&c, vec![StuckAt::output(o, true)], 10_000).run();
        assert_eq!(r, PodemResult::Untestable);
    }

    #[test]
    fn generated_combinational_tests_verify_by_simulation() {
        // Every PODEM test must actually detect its fault in a serial
        // simulation of the same circuit.
        let spec = cfs_netlist::CircuitSpec::new("pd", 6, 4, 0, 60, 4242);
        let c = cfs_netlist::generate::generate(&spec);
        let faults = cfs_faults::enumerate_stuck_at(&c);
        let mut found = 0;
        for &f in faults.iter().take(120) {
            match Podem::new(&c, vec![f], 2_000).run() {
                PodemResult::Test(t) => {
                    found += 1;
                    let report =
                        cfs_baselines::SerialSim::new(&c, &[f]).run(std::slice::from_ref(&t));
                    assert_eq!(report.detected(), 1, "{} with {t:?}", f.describe(&c));
                }
                PodemResult::Untestable | PodemResult::Aborted => {}
            }
        }
        assert!(found > 60, "PODEM finds tests for most faults: {found}");
    }

    #[test]
    fn unassignable_inputs_are_never_assigned() {
        let c = parse_bench("u", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = c.find("y").unwrap();
        let podem =
            Podem::with_assignable(&c, vec![StuckAt::output(y, false)], vec![true, false], 100);
        // b cannot be set to 1, so no test exists.
        assert_eq!(podem.run(), PodemResult::Untestable);
    }
}
