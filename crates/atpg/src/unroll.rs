//! Time-frame expansion: unrolling a synchronous sequential circuit into a
//! combinational circuit of `k` frames for test generation.
//!
//! Frame-0 flip-flop outputs become *pseudo primary inputs* pinned to `X`
//! (no reset is assumed, as in the paper's sequential setting); each frame
//! boundary is an explicit `BUF` so flip-flop Q-output and D-pin faults
//! have distinct unrolled sites. A test derived under the all-`X` initial
//! state is valid from **any** starting state, so generated sequences can
//! be concatenated.

use cfs_faults::{FaultSite, StuckAt};
use cfs_logic::GateFn;
use cfs_netlist::{Circuit, CircuitBuilder, GateId, GateKind};

/// A `k`-frame unrolled view of a sequential circuit.
#[derive(Debug)]
pub struct Unrolled {
    /// The combinational unrolled circuit.
    pub circuit: Circuit,
    /// Number of frames.
    pub frames: usize,
    /// Primary inputs of the original circuit, per frame:
    /// `pi_copies[t][k]` is frame `t`'s copy of original PI `k`.
    pub pi_copies: Vec<Vec<GateId>>,
    /// Pseudo primary inputs: frame-0 flip-flop outputs (held at `X`).
    pub state_inputs: Vec<GateId>,
    /// Per-frame copy of every original node:
    /// `copy[t][original.index()]`.
    copy: Vec<Vec<GateId>>,
}

impl Unrolled {
    /// Unrolls `circuit` into `frames ≥ 1` combinational frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn new(circuit: &Circuit, frames: usize) -> Self {
        assert!(frames >= 1, "need at least one frame");
        let mut b = CircuitBuilder::new(format!("{}#x{}", circuit.name(), frames));
        let n = circuit.num_nodes();
        let mut copy: Vec<Vec<GateId>> = vec![vec![GateId::from_index(0); n]; frames];
        let mut pi_copies: Vec<Vec<GateId>> = vec![Vec::new(); frames];
        let mut state_inputs = Vec::new();

        // Frame-0 pseudo-PIs for the state.
        for &q in circuit.dffs() {
            let id = b.input(format!("{}@s0", circuit.gate(q).name()));
            copy[0][q.index()] = id;
            state_inputs.push(id);
        }
        for t in 0..frames {
            // PIs of this frame.
            for &pi in circuit.inputs() {
                let id = b.input(format!("{}@{t}", circuit.gate(pi).name()));
                copy[t][pi.index()] = id;
                pi_copies[t].push(id);
            }
            // Frame boundary: flip-flop outputs of frame t>0 are buffers of
            // the previous frame's D drivers.
            if t > 0 {
                for &q in circuit.dffs() {
                    let d = circuit.gate(q).fanin()[0];
                    let id = b
                        .gate(
                            format!("{}@s{t}", circuit.gate(q).name()),
                            GateFn::Buf,
                            vec![copy[t - 1][d.index()]],
                        )
                        .expect("buffer arity");
                    copy[t][q.index()] = id;
                }
            }
            // Combinational gates, in level order so fanins resolve.
            for &g in circuit.topo_order() {
                let gate = circuit.gate(g);
                let f = gate.kind().gate_fn().expect("combinational");
                let fanin: Vec<GateId> = gate.fanin().iter().map(|&s| copy[t][s.index()]).collect();
                let id = b
                    .gate(format!("{}@{t}", gate.name()), f, fanin)
                    .expect("copied arity is valid");
                copy[t][g.index()] = id;
            }
            // POs of this frame.
            for &po in circuit.outputs() {
                b.output(copy[t][po.index()]);
            }
        }
        let unrolled = b.finish().expect("unrolled circuit is valid");
        Unrolled {
            circuit: unrolled,
            frames,
            pi_copies,
            state_inputs,
            copy,
        }
    }

    /// The frame-`t` copy of an original node.
    ///
    /// For flip-flops, frame 0 returns the pseudo-PI and later frames the
    /// boundary buffer.
    pub fn copy_of(&self, original: GateId, frame: usize) -> GateId {
        self.copy[frame][original.index()]
    }

    /// Maps a stuck-at fault of the original circuit onto its unrolled
    /// injection sites (the fault is permanent, so one site per frame).
    pub fn map_fault(&self, original: &Circuit, fault: StuckAt) -> Vec<StuckAt> {
        let mut sites = Vec::with_capacity(self.frames);
        let g = fault.site.gate();
        match (fault.site, original.gate(g).kind()) {
            (FaultSite::Output { .. }, _) => {
                // Output faults (gate, PI, or flip-flop Q) force every
                // frame's copy of the node.
                for t in 0..self.frames {
                    sites.push(StuckAt::output(self.copy_of(g, t), fault.stuck_at_one));
                }
            }
            (FaultSite::Pin { pin, .. }, GateKind::Dff) => {
                debug_assert_eq!(pin, 0);
                // The D pin is the input of each boundary buffer; frame 0
                // has no boundary (the pseudo-PI absorbs the unknown
                // state), and the final frame's D is unobserved.
                for t in 1..self.frames {
                    sites.push(StuckAt::pin(self.copy_of(g, t), 0, fault.stuck_at_one));
                }
            }
            (FaultSite::Pin { pin, .. }, _) => {
                for t in 0..self.frames {
                    sites.push(StuckAt::pin(self.copy_of(g, t), pin, fault.stuck_at_one));
                }
            }
        }
        sites
    }

    /// Splits an unrolled PI assignment into the per-cycle pattern
    /// sequence for the original circuit (pseudo-PIs are ignored).
    pub fn to_sequence(&self, assignment: &[cfs_logic::Logic]) -> Vec<Vec<cfs_logic::Logic>> {
        let mut seq = Vec::with_capacity(self.frames);
        for t in 0..self.frames {
            seq.push(
                self.pi_copies[t]
                    .iter()
                    .map(|&pi| {
                        let idx = self
                            .circuit
                            .inputs()
                            .iter()
                            .position(|&x| x == pi)
                            .expect("copy is a PI");
                        assignment[idx]
                    })
                    .collect(),
            );
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_logic::Logic;
    use cfs_netlist::data::s27;

    #[test]
    fn sizes_scale_with_frames() {
        let c = s27();
        for k in 1..4 {
            let u = Unrolled::new(&c, k);
            assert_eq!(u.circuit.num_inputs(), c.num_dffs() + k * c.num_inputs());
            assert_eq!(u.circuit.num_outputs(), k * c.num_outputs());
            // Gates: k frames of logic plus (k-1) boundary buffers per DFF.
            assert_eq!(
                u.circuit.num_comb_gates(),
                k * c.num_comb_gates() + (k - 1) * c.num_dffs()
            );
            assert_eq!(u.circuit.num_dffs(), 0, "fully combinational");
        }
    }

    #[test]
    fn unrolled_behaviour_matches_sequential_run() {
        let c = s27();
        let k = 3;
        let u = Unrolled::new(&c, k);
        // Sequential run.
        let seq: Vec<Vec<Logic>> = vec![
            cfs_logic::parse_pattern("0110").unwrap(),
            cfs_logic::parse_pattern("1011").unwrap(),
            cfs_logic::parse_pattern("0001").unwrap(),
        ];
        let mut gsim = cfs_goodsim::FullSim::new(&c);
        let seq_outputs: Vec<Vec<Logic>> = seq.iter().map(|p| gsim.step(p)).collect();
        // Unrolled run: pseudo-PIs X, frame PIs from the sequence.
        let mut usim = cfs_goodsim::FullSim::new(&u.circuit);
        let mut pattern = Vec::new();
        for &pi in u.circuit.inputs() {
            let name = u.circuit.gate(pi).name().to_owned();
            if name.contains("@s0") {
                pattern.push(Logic::X);
            } else {
                let (orig, frame) = name.rsplit_once('@').unwrap();
                let t: usize = frame.parse().unwrap();
                let kth = c
                    .inputs()
                    .iter()
                    .position(|&p| c.gate(p).name() == orig)
                    .unwrap();
                pattern.push(seq[t][kth]);
            }
        }
        let flat = usim.step(&pattern);
        for (t, out) in seq_outputs.iter().enumerate() {
            let got = &flat[t * c.num_outputs()..(t + 1) * c.num_outputs()];
            assert_eq!(got, out.as_slice(), "frame {t}");
        }
    }

    #[test]
    fn fault_mapping_counts() {
        let c = s27();
        let u = Unrolled::new(&c, 3);
        let q = c.dffs()[0];
        let g11 = c.find("G11").unwrap();
        assert_eq!(
            u.map_fault(&c, cfs_faults::StuckAt::output(g11, true))
                .len(),
            3
        );
        assert_eq!(
            u.map_fault(&c, cfs_faults::StuckAt::output(q, false)).len(),
            3
        );
        assert_eq!(
            u.map_fault(&c, cfs_faults::StuckAt::pin(q, 0, true)).len(),
            2
        );
    }
}
