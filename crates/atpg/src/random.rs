//! Random and weighted-random test pattern sources.

use cfs_logic::Logic;
use cfs_netlist::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `count` uniform random binary patterns for a circuit.
///
/// # Examples
///
/// ```
/// use cfs_atpg::random_patterns;
/// use cfs_netlist::data::s27;
///
/// let c = s27();
/// let p = random_patterns(&c, 10, 42);
/// assert_eq!(p.len(), 10);
/// assert_eq!(p[0].len(), 4);
/// ```
pub fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    weighted_random_patterns(circuit, count, seed, 0.5)
}

/// Generates patterns where each input is `1` with probability `p_one`
/// (weighted random testing raises coverage on control-dominated logic).
///
/// # Panics
///
/// Panics unless `0.0 <= p_one <= 1.0`.
pub fn weighted_random_patterns(
    circuit: &Circuit,
    count: usize,
    seed: u64,
    p_one: f64,
) -> Vec<Vec<Logic>> {
    assert!((0.0..=1.0).contains(&p_one), "probability out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(p_one)))
                .collect()
        })
        .collect()
}

/// Fills the `X` positions of a pattern with random binary values, leaving
/// assigned positions untouched (random fill after deterministic test
/// generation improves collateral detection).
pub fn random_fill(pattern: &mut [Logic], rng: &mut StdRng) {
    for v in pattern.iter_mut() {
        if *v == Logic::X {
            *v = Logic::from_bool(rng.gen_bool(0.5));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_netlist::data::s27;

    #[test]
    fn deterministic_in_seed() {
        let c = s27();
        assert_eq!(random_patterns(&c, 5, 7), random_patterns(&c, 5, 7));
        assert_ne!(random_patterns(&c, 5, 7), random_patterns(&c, 5, 8));
    }

    #[test]
    fn weights_shift_the_distribution() {
        let c = s27();
        let ones = |ps: &[Vec<Logic>]| ps.iter().flatten().filter(|&&v| v == Logic::One).count();
        let lo = weighted_random_patterns(&c, 200, 1, 0.1);
        let hi = weighted_random_patterns(&c, 200, 1, 0.9);
        assert!(ones(&lo) < ones(&hi) / 3);
    }

    #[test]
    fn fill_touches_only_x() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = vec![Logic::One, Logic::X, Logic::Zero, Logic::X];
        random_fill(&mut p, &mut rng);
        assert_eq!(p[0], Logic::One);
        assert_eq!(p[2], Logic::Zero);
        assert!(p[1].is_binary() && p[3].is_binary());
    }
}
