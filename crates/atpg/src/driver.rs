//! The sequential test generation driver: random phase, then PODEM over
//! deepening time-frame windows, with concurrent fault simulation for
//! collateral dropping (the shape of the authors' own test generator,
//! reference [14] of the paper).

use std::collections::HashMap;
use std::fmt;

use cfs_core::{ConcurrentSim, CsimVariant};
use cfs_faults::{FaultSimReport, FaultStatus, StuckAt};
use cfs_logic::Logic;
use cfs_netlist::Circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{random_fill, random_patterns, Podem, PodemResult, Unrolled};

/// Configuration of the sequential test generator.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgOptions {
    /// Deepest time-frame window tried per fault.
    pub max_frames: usize,
    /// PODEM backtrack limit per attempt.
    pub backtrack_limit: usize,
    /// Random-phase pattern budget (0 disables the random phase).
    pub random_patterns: usize,
    /// RNG seed (random phase and X-fill).
    pub seed: u64,
}

impl Default for AtpgOptions {
    fn default() -> Self {
        AtpgOptions {
            max_frames: 8,
            backtrack_limit: 1_000,
            random_patterns: 128,
            seed: 0xCF5,
        }
    }
}

/// Result of a test generation run.
#[derive(Debug)]
pub struct AtpgOutcome {
    /// The generated test sequence (one pattern per clock cycle).
    pub patterns: Vec<Vec<Logic>>,
    /// Fault simulation report of the final sequence (csim-MV).
    pub report: FaultSimReport,
    /// Faults abandoned on the backtrack limit.
    pub aborted: usize,
    /// Faults with no test within `max_frames` frames under three-valued
    /// pessimism (not a redundancy proof).
    pub untestable_within_depth: usize,
}

impl fmt::Display for AtpgOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} patterns, {:.2}% coverage ({} aborted, {} no-test-in-window)",
            self.patterns.len(),
            self.report.coverage_percent(),
            self.aborted,
            self.untestable_within_depth
        )
    }
}

/// Generates a test sequence for the fault universe of a synchronous
/// sequential circuit.
///
/// Phase 1 simulates a random sequence with fault dropping; phase 2 targets
/// each remaining fault with PODEM over 1, 2, 3, 5, then `max_frames`
/// time frames, appending each found window to the sequence (windows are
/// derived under an all-`X` initial state, so they detect their target from
/// any state the preceding sequence leaves behind).
///
/// # Examples
///
/// ```no_run
/// use cfs_atpg::{generate_tests, AtpgOptions};
/// use cfs_faults::collapse_stuck_at;
/// use cfs_netlist::data::s27;
///
/// let c = s27();
/// let faults = collapse_stuck_at(&c).representatives;
/// let outcome = generate_tests(&c, &faults, AtpgOptions::default());
/// println!("{outcome}");
/// ```
pub fn generate_tests(circuit: &Circuit, faults: &[StuckAt], options: AtpgOptions) -> AtpgOutcome {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut sim = ConcurrentSim::new(circuit, faults, CsimVariant::Mv.options());
    let mut patterns: Vec<Vec<Logic>> = Vec::new();

    // Phase 1: random patterns with fault dropping.
    for p in random_patterns(circuit, options.random_patterns, options.seed ^ 0x5eed) {
        sim.step(&p);
        patterns.push(p);
    }

    // Phase 2: deterministic targeting.
    let schedule: Vec<usize> = [1usize, 2, 3, 5, options.max_frames]
        .iter()
        .copied()
        .filter(|&k| k <= options.max_frames)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut unrolled: HashMap<usize, Unrolled> = HashMap::new();
    let mut aborted = 0usize;
    let mut untestable = 0usize;

    for (target, &target_fault) in faults.iter().enumerate() {
        if sim.statuses()[target].is_detected()
            || matches!(sim.statuses()[target], FaultStatus::Untestable)
        {
            continue;
        }
        let mut resolved = false;
        let mut hit_abort = false;
        for &frames in &schedule {
            let u = unrolled
                .entry(frames)
                .or_insert_with(|| Unrolled::new(circuit, frames));
            let injections = u.map_fault(circuit, target_fault);
            if injections.is_empty() {
                continue; // e.g. a D-pin fault in a 1-frame window
            }
            let mut assignable = vec![false; u.circuit.num_inputs()];
            for pis in &u.pi_copies {
                for &pi in pis {
                    let k = u
                        .circuit
                        .inputs()
                        .iter()
                        .position(|&x| x == pi)
                        .expect("copy is a PI");
                    assignable[k] = true;
                }
            }
            let podem =
                Podem::with_assignable(&u.circuit, injections, assignable, options.backtrack_limit);
            match podem.run() {
                PodemResult::Test(mut assignment) => {
                    random_fill(&mut assignment, &mut rng);
                    for p in u.to_sequence(&assignment) {
                        sim.step(&p);
                        patterns.push(p);
                    }
                    resolved = true;
                    break;
                }
                PodemResult::Untestable => continue, // try a deeper window
                PodemResult::Aborted => {
                    hit_abort = true;
                    break; // deeper windows are even more expensive
                }
            }
        }
        if !resolved {
            if hit_abort {
                aborted += 1;
            } else {
                untestable += 1;
            }
        }
    }

    // Trim the useless tail: everything after the final first-detection.
    let statuses = sim.statuses();
    let last_useful = statuses
        .iter()
        .filter_map(|s| match s {
            FaultStatus::Detected { pattern } => Some(*pattern),
            _ => None,
        })
        .max();
    if let Some(last) = last_useful {
        patterns.truncate(last + 1);
    } else {
        patterns.clear();
    }

    // Final clean run for the report (fresh simulator, trimmed sequence).
    let mut final_sim = ConcurrentSim::new(circuit, faults, CsimVariant::Mv.options());
    let report = final_sim.run(&patterns);
    AtpgOutcome {
        patterns,
        report,
        aborted,
        untestable_within_depth: untestable,
    }
}

/// Drops the tail of a sequence that detects nothing new (re-simulating
/// with csim-MV). Returns the trimmed sequence.
pub fn trim_tail(
    circuit: &Circuit,
    faults: &[StuckAt],
    patterns: Vec<Vec<Logic>>,
) -> Vec<Vec<Logic>> {
    let mut sim = ConcurrentSim::new(circuit, faults, CsimVariant::Mv.options());
    let report = sim.run(&patterns);
    let last = report
        .statuses
        .iter()
        .filter_map(|s| match s {
            FaultStatus::Detected { pattern } => Some(*pattern),
            _ => None,
        })
        .max();
    let mut patterns = patterns;
    match last {
        Some(l) => patterns.truncate(l + 1),
        None => patterns.clear(),
    }
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_baselines::SerialSim;
    use cfs_faults::collapse_stuck_at;
    use cfs_netlist::data::s27;

    #[test]
    fn s27_reaches_high_coverage() {
        let c = s27();
        let faults = collapse_stuck_at(&c).representatives;
        let outcome = generate_tests(
            &c,
            &faults,
            AtpgOptions {
                random_patterns: 32,
                ..Default::default()
            },
        );
        assert!(outcome.report.coverage_percent() > 90.0, "{}", outcome);
        // The reported coverage is confirmed by the serial oracle.
        let serial = SerialSim::new(&c, &faults).run(&outcome.patterns);
        assert_eq!(serial.detected(), outcome.report.detected());
    }

    #[test]
    fn deterministic_phase_beats_random_alone() {
        let c = cfs_netlist::generate::benchmark("s386g").unwrap();
        let faults = collapse_stuck_at(&c).representatives;
        let n_random = 48;
        let mut random_only = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        let rr = random_only.run(&random_patterns(
            &c,
            n_random,
            AtpgOptions::default().seed ^ 0x5eed,
        ));
        let outcome = generate_tests(
            &c,
            &faults,
            AtpgOptions {
                random_patterns: n_random,
                max_frames: 5,
                backtrack_limit: 300,
                ..Default::default()
            },
        );
        assert!(
            outcome.report.detected() > rr.detected(),
            "ATPG {} vs random {}",
            outcome.report.detected(),
            rr.detected()
        );
    }

    #[test]
    fn trim_tail_drops_only_useless_patterns() {
        let c = s27();
        let faults = collapse_stuck_at(&c).representatives;
        let mut patterns = random_patterns(&c, 20, 3);
        // Append patterns identical to the last: no new detections.
        let last = patterns.last().unwrap().clone();
        for _ in 0..10 {
            patterns.push(last.clone());
        }
        let before = {
            let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
            sim.run(&patterns).detected()
        };
        let trimmed = trim_tail(&c, &faults, patterns);
        assert!(trimmed.len() <= 20);
        let after = {
            let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
            sim.run(&trimmed).detected()
        };
        assert_eq!(before, after);
    }
}
