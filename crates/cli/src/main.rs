//! `fsim` — command-line concurrent fault simulation for synchronous
//! sequential circuits (Lee & Reddy, DAC 1992).
//!
//! ```text
//! fsim check <circuit> [--format text|json]
//! fsim analyze <circuit> [--format text|json]
//! fsim impact <base> <edited> [--format text|json]
//! fsim stats <circuit>
//! fsim sim <circuit> [--random N | --patterns FILE] [--variant base|v|m|mv|all]
//!                    [--simulator csim|proofs|serial|deductive] [--uncollapsed]
//!                    [--prune] [--threads N] [--shard-plan PLAN]
//!                    [--batch-windows W] [--steal] [--quiesce-window W]
//!                    [--checkpoint-every K --checkpoint-out DIR] [--resume-from FILE]
//!                    [--incremental --baseline-report FILE] [--baseline-out FILE]
//!                    [--detections FILE] [--stats] [--stats-json FILE]
//!                    [--trace-every N] [--trace-out FILE] [--trace-capacity N]
//!                    [--trace-window W] [--no-check] [--paranoid]
//! fsim transition <circuit> [--random N | --patterns FILE]
//!                    [--prune] [--threads N] [--shard-plan PLAN]
//!                    [--batch-windows W] [--steal] [--quiesce-window W]
//!                    [--checkpoint-every K --checkpoint-out DIR] [--resume-from FILE]
//!                    [--incremental --baseline-report FILE] [--baseline-out FILE]
//!                    [--detections FILE] [--stats] [--stats-json FILE]
//!                    [--trace-every N] [--trace-out FILE] [--trace-capacity N]
//!                    [--trace-window W] [--no-check] [--paranoid]
//! fsim explain <circuit> <fault-id> [--random N | --patterns FILE]
//!                    [--uncollapsed] [--trace-window W] [--no-check]
//! fsim heatmap <circuit> [--random N | --patterns FILE] [--uncollapsed]
//!                    [--top K] [--format text|json] [--no-check]
//! fsim atpg <circuit> [--max-frames K] [--random N] [--out FILE]
//! fsim generate <name> [--out FILE]
//! fsim mutate <circuit> --edit retype|rewire|dead-logic [--choice N] [--out FILE]
//! ```
//!
//! `<circuit>` is a `.bench` file path, or `@name` for a built-in circuit
//! (`@s27` or a generated benchmark such as `@s298g`). Flags accept both
//! `--flag value` and `--flag=value`; unknown flags are an error.
//!
//! `--threads N` fault-shards the concurrent simulators across `N` worker
//! threads (`--shard-plan round-robin|contiguous|level-aware|weight-aware`
//! picks the partition; `weight-aware` balances shards by SCOAP-derived
//! fault weights); results are bit-identical for every thread count.
//! `--detections FILE` writes the deterministic detection list — one
//! `pattern fault` line per detected fault, sorted by pattern then fault
//! index — which is the artifact to diff across thread counts.
//!
//! `--batch-windows W` adds the second parallelism axis: the pattern
//! sequence splits into windows of `W` patterns (`0` = one whole-run
//! window), a 64-lane pattern-parallel good machine produces each
//! window's settled traces, and (shard × window) tasks run under the
//! work-stealing scheduler — a shard's windows stay in order because the
//! shard engine carries the sequential DFF state across the boundary.
//! `--steal` lets idle workers steal runnable shards (and overshards the
//! fault universe 2× so there is spare work to take). Detections remain
//! bit-identical to the serial simulator for every window size, thread
//! count, and steal schedule.
//!
//! `fsim check` runs the `cfs-check` static analyses and prints the
//! diagnostics (stable rule codes, severities, `.bench` line spans; JSON
//! under `--format json`), exiting nonzero on any error-severity finding.
//! `sim` and `transition` run the same analyses as a preflight and refuse
//! error-ridden netlists unless `--no-check` is given. `--paranoid` turns
//! on the engine's per-pattern invariant verifier even in release builds.
//!
//! `fsim analyze` runs the fault-universe analyses — ternary constant
//! propagation, structural observability, fault dominance, SCOAP scores —
//! and reports how far they shrink the stuck-at and transition universes.
//! `--prune` on `sim`/`transition` applies those proofs: only surviving
//! exact-class representatives are simulated, and the detection report is
//! expanded back to the full uncollapsed universe (pruned faults report
//! as untestable), bit-identical to an `--uncollapsed` run.
//!
//! `--stats` attaches the telemetry probe and prints the per-run metric
//! table (plus phase times and list-length/queue-depth histograms for the
//! concurrent simulators); `--stats-json FILE` streams one JSON line per
//! pattern plus a summary record; `--trace-every N` prints a progress line
//! every N patterns (under `--threads N` the per-shard records merge into
//! one deterministic line per milestone). `--variant all` runs all four
//! concurrent variants and renders them in one comparison table.
//!
//! `--trace-out FILE` attaches the `cfs-trace` event recorder alongside
//! the metrics probe and writes a Chrome Trace Event / Perfetto JSON
//! document: one track per shard worker with pattern and phase spans plus
//! fault-lifecycle instants (divergence, convergence, drop, detection,
//! quiescence), and a counter track for live fault-list elements and
//! event-queue depth. `--trace-capacity N` bounds each shard's event ring
//! (oldest events drop beyond it); `--trace-window W` sets the quiescence
//! window in patterns (0 disables).
//!
//! `--quiesce-window W` turns on the engine's quiescence gate: a node
//! whose good value and fault list have not changed for more than `W`
//! consecutive patterns is *dormant*, and the per-pattern sweeps
//! (primary-input refresh, output detection taps, flip-flop collection,
//! transition prev-pin recording) fence dormant nodes out instead of
//! re-walking their lists. Any state change re-activates the node on the
//! spot, so gated detections are bit-identical to ungated for every
//! window. When both `--quiesce-window` and `--trace-window` are given
//! they must agree; with only `--quiesce-window W` (W > 0), the trace
//! recorder's quiescence window follows it.
//!
//! `--checkpoint-every K --checkpoint-out DIR` snapshots the complete
//! engine state (flip-flop values, fault lists, statuses, scheduler
//! frontier, gating clocks) every `K` patterns into
//! `DIR/ckpt-NNNNNN.bin`; `--resume-from FILE` restores one such
//! snapshot and replays only the remaining patterns, producing the same
//! report as the uninterrupted run. Checkpointing captures one serial
//! engine, so it needs `--threads 1`, a single `--variant`, and no
//! `--batch-windows`/`--trace-out`.
//!
//! `fsim impact` runs the static change-impact analysis between two
//! netlists: the structural diff (added/removed/retyped/rewired gates,
//! output-tap changes, keyed by signal name), the affected-cone fixpoint
//! (forward fan-out closure crossing DFF boundaries, intersected with the
//! observability cone, closed backward over both circuits), and the
//! resulting split of the stuck-at and transition universes into faults
//! that must re-simulate and faults whose baseline fate provably
//! transfers. `--baseline-out FILE` on `sim`/`transition` records a run's
//! full-universe fates (plus the canonical netlist and a stimulus
//! fingerprint); `--incremental --baseline-report FILE` then re-simulates
//! only the affected cone of an edited netlist and expands the report
//! back over the full universe, bit-identical to a cold full run.
//! `--paranoid` on an incremental run cold-re-simulates everything and
//! cross-checks every transferred fate (`I003`, exit 2 on mismatch).
//! `fsim mutate` applies one deterministic scripted edit (gate retype,
//! fanin rewire, dead-logic insertion) to a netlist — the workload
//! generator for incremental-equivalence testing.
//!
//! `fsim explain` replays one fault's recorded lifecycle as a timeline —
//! first excitation, every divergence/convergence, detection — from a
//! serial gate-level traced run. Unknown or statically-pruned fault ids
//! exit with status 2 and a `cfs-check`-style diagnostic. `fsim heatmap`
//! ranks nodes by fault-list activity (divergences + convergences +
//! drops), the measured counterpart of the static SCOAP weights.

use std::fmt;
use std::fs;
use std::io;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use cfs_atpg::{generate_tests, random_patterns, AtpgOptions};
use cfs_baselines::{DeductiveSim, ProofsSim, SerialSim};
use cfs_check::{
    analysis_findings, analyze_circuit, classify_stuck_at, classify_transition, cross_check_fates,
    diff_netlists, impact_analysis, impact_findings, learn_findings, prune_stuck_at,
    prune_stuck_at_learned, prune_transition, prune_transition_learned, stuck_weights,
    transition_weights, EditKind, ImpactAnalysis, ImplicationGraph, LearnOptions, RuleCode,
    Severity,
};
use cfs_core::{
    detections_of, BatchOptions, Checkpoint, ConcurrentSim, CsimOptions, CsimVariant, NullProbe,
    ParallelSim, ParallelTransitionSim, SchedStats, ShardPlan, TransitionOptions, TransitionSim,
};
use cfs_faults::{
    collapse_stuck_at, dominance_collapse, enumerate_stuck_at, enumerate_transition, FaultFate,
    FaultSimReport, FaultStatus, ImpactStats, ImpactUniverse, PruneReason, PrunedUniverse, StuckAt,
    TransitionFault,
};
use cfs_logic::{format_pattern, parse_pattern, Logic};
use cfs_netlist::{
    apply_edit, edit_candidates, extract_macros, parse_bench, parse_bench_with_provenance,
    write_bench, BenchEdit, BenchProvenance, Circuit, GateId,
};
use cfs_telemetry::{
    render_histogram, render_phase_table, render_summary_table, write_json_string, JsonValue,
    JsonlWriter, Log2Histogram, MetricsSnapshot, PairProbe, Phase, SimMetrics,
};
use cfs_trace::{
    write_chrome_trace_with_sched, FaultTimeline, Heatmap, SchedSpan, SchedSteal, SchedTrack,
    TraceConfig, TraceEvent, TraceRecorder, TrackTrace,
};

#[derive(Debug)]
struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> Box<dyn std::error::Error> {
    Box::new(CliError(msg.into()))
}

/// An already-rendered `cfs-check`-style diagnostic (`severity: CODE
/// [slug] message`): printed verbatim, exits with status 2 so scripts can
/// tell a diagnosed input (2) from an operational failure (1).
#[derive(Debug)]
struct DiagnosticError(String);

impl fmt::Display for DiagnosticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DiagnosticError {}

fn diag(msg: impl Into<String>) -> Box<dyn std::error::Error> {
    Box::new(DiagnosticError(msg.into()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.is::<DiagnosticError>() => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("fsim: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match command.as_str() {
        "check" => cmd_check(rest),
        "analyze" => cmd_analyze(rest),
        "rules" => cmd_rules(rest),
        "implications" => cmd_implications(rest),
        "impact" => cmd_impact(rest),
        "stats" => cmd_stats(rest),
        "mutate" => cmd_mutate(rest),
        "sim" => cmd_sim(rest),
        "transition" => cmd_transition(rest),
        "explain" => cmd_explain(rest),
        "heatmap" => cmd_heatmap(rest),
        "atpg" => cmd_atpg(rest),
        "generate" => cmd_generate(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(err(format!("unknown command {other:?} (try --help)"))),
    }
}

fn print_usage() {
    eprintln!(
        "fsim — concurrent fault simulation for synchronous sequential circuits\n\
         \n\
         usage:\n\
         \u{20}  fsim check <circuit> [--format text|json]\n\
         \u{20}  fsim analyze <circuit> [--format text|json] [--learn] [--learn-frames K]\n\
         \u{20}  fsim rules [CODE] [--format text|json]\n\
         \u{20}  fsim implications <circuit> <net> [--format text|json] [--learn-frames K]\n\
         \u{20}  fsim impact <base> <edited> [--format text|json]\n\
         \u{20}  fsim stats <circuit>\n\
         \u{20}  fsim sim <circuit> [--random N | --patterns FILE] [--variant base|v|m|mv|all]\n\
         \u{20}                     [--simulator csim|proofs|serial|deductive] [--uncollapsed]\n\
         \u{20}                     [--prune] [--threads N] [--shard-plan PLAN]\n\
         \u{20}                     [--batch-windows W] [--steal] [--quiesce-window W]\n\
         \u{20}                     [--checkpoint-every K --checkpoint-out DIR] [--resume-from FILE]\n\
         \u{20}                     [--incremental --baseline-report FILE] [--baseline-out FILE]\n\
         \u{20}                     [--detections FILE] [--stats] [--stats-json FILE]\n\
         \u{20}                     [--trace-every N] [--trace-out FILE] [--trace-capacity N]\n\
         \u{20}                     [--trace-window W] [--no-check] [--paranoid]\n\
         \u{20}  fsim transition <circuit> [--random N | --patterns FILE]\n\
         \u{20}                     [--prune] [--threads N] [--shard-plan PLAN]\n\
         \u{20}                     [--batch-windows W] [--steal] [--quiesce-window W]\n\
         \u{20}                     [--checkpoint-every K --checkpoint-out DIR] [--resume-from FILE]\n\
         \u{20}                     [--incremental --baseline-report FILE] [--baseline-out FILE]\n\
         \u{20}                     [--detections FILE] [--stats] [--stats-json FILE]\n\
         \u{20}                     [--trace-every N] [--trace-out FILE] [--trace-capacity N]\n\
         \u{20}                     [--trace-window W] [--no-check] [--paranoid]\n\
         \u{20}  fsim explain <circuit> <fault-id> [--random N | --patterns FILE]\n\
         \u{20}                     [--uncollapsed] [--trace-window W] [--no-check]\n\
         \u{20}  fsim heatmap <circuit> [--random N | --patterns FILE] [--uncollapsed]\n\
         \u{20}                     [--top K] [--format text|json] [--no-check]\n\
         \u{20}  fsim atpg <circuit> [--max-frames K] [--random N] [--out FILE]\n\
         \u{20}  fsim generate <name> [--out FILE]\n\
         \u{20}  fsim mutate <circuit> --edit retype|rewire|dead-logic [--choice N] [--out FILE]\n\
         \n\
         <circuit>: a .bench file, or @name for a built-in (@s27, @s298g, …)\n\
         flags take either `--flag value` or `--flag=value`\n\
         --prune       simulate only faults the static analyses cannot prove\n\
         \u{20}             undetectable; reports expand to the full universe\n\
         --learn       add implication learning to --prune (and to analyze):\n\
         \u{20}             conflict-untestable faults (F004) are pruned too\n\
         --learn-frames  unrolled time frames for --learn (default 2)\n\
         --baseline-out    record the run's full-universe fates for later\n\
         \u{20}             --incremental runs (needs --uncollapsed on sim)\n\
         --incremental     re-simulate only the faults a netlist edit could\n\
         \u{20}             affect; the rest transfer from --baseline-report\n\
         --threads     fault-shard the concurrent simulator across N workers\n\
         --shard-plan  round-robin (default) | contiguous | level-aware | weight-aware\n\
         --batch-windows  pattern-batch axis: windows of W patterns under the\n\
         \u{20}             work-stealing scheduler (0 = one whole-run window)\n\
         --steal       let idle workers steal runnable shards (overshards 2×;\n\
         \u{20}             needs --batch-windows)\n\
         --quiesce-window  fence nodes untouched for more than W patterns out of\n\
         \u{20}             the per-pattern sweeps (0 = off; detections unchanged)\n\
         --checkpoint-every  snapshot engine state every K patterns (serial runs;\n\
         \u{20}             needs --checkpoint-out DIR, writes DIR/ckpt-NNNNNN.bin)\n\
         --resume-from restore a checkpoint file and replay only the rest\n\
         --detections  write the sorted `pattern fault` detection list\n\
         --stats       print the metric table (plus phase times and histograms)\n\
         --stats-json  write one JSON line per pattern plus a summary record\n\
         --trace-every print a progress line every N patterns (concurrent sims)\n\
         --trace-out   write a Chrome Trace / Perfetto JSON event trace\n\
         --trace-capacity  per-shard trace ring capacity in events (default 1M)\n\
         --trace-window    quiescence window in patterns, 0 disables (default 32)\n\
         --variant all run all four concurrent variants into one comparison table\n\
         --no-check    skip the cfs-check preflight (sim/transition refuse on errors)\n\
         --paranoid    verify engine invariants after every pattern, even in release\n\
         --format      check output: text (default) | json"
    );
}

/// Simple flag scanner: returns the value of `flag`, given either as
/// `--flag value` or `--flag=value`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return args.get(i + 1).map(String::as_str);
        }
        if let Some(rest) = a.strip_prefix(flag) {
            if let Some(value) = rest.strip_prefix('=') {
                return Some(value);
            }
        }
    }
    None
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Per-command flag table: `(name, takes_value)`.
type FlagSpec = &'static [(&'static str, bool)];

const STATS_FLAGS: FlagSpec = &[];
const CHECK_FLAGS: FlagSpec = &[("--format", true)];
const ANALYZE_FLAGS: FlagSpec = &[
    ("--format", true),
    ("--learn", false),
    ("--learn-frames", true),
];
const RULES_FLAGS: FlagSpec = &[("--format", true)];
const IMPLICATIONS_FLAGS: FlagSpec = &[("--format", true), ("--learn-frames", true)];
const SIM_FLAGS: FlagSpec = &[
    ("--patterns", true),
    ("--random", true),
    ("--seed", true),
    ("--variant", true),
    ("--simulator", true),
    ("--uncollapsed", false),
    ("--prune", false),
    ("--learn", false),
    ("--learn-frames", true),
    ("--incremental", false),
    ("--baseline-report", true),
    ("--baseline-out", true),
    ("--threads", true),
    ("--shard-plan", true),
    ("--batch-windows", true),
    ("--steal", false),
    ("--quiesce-window", true),
    ("--checkpoint-every", true),
    ("--checkpoint-out", true),
    ("--resume-from", true),
    ("--detections", true),
    ("--stats", false),
    ("--stats-json", true),
    ("--trace-every", true),
    ("--trace-out", true),
    ("--trace-capacity", true),
    ("--trace-window", true),
    ("--no-check", false),
    ("--paranoid", false),
];
const TRANSITION_FLAGS: FlagSpec = &[
    ("--patterns", true),
    ("--random", true),
    ("--seed", true),
    ("--prune", false),
    ("--learn", false),
    ("--learn-frames", true),
    ("--incremental", false),
    ("--baseline-report", true),
    ("--baseline-out", true),
    ("--threads", true),
    ("--shard-plan", true),
    ("--batch-windows", true),
    ("--steal", false),
    ("--quiesce-window", true),
    ("--checkpoint-every", true),
    ("--checkpoint-out", true),
    ("--resume-from", true),
    ("--detections", true),
    ("--stats", false),
    ("--stats-json", true),
    ("--trace-every", true),
    ("--trace-out", true),
    ("--trace-capacity", true),
    ("--trace-window", true),
    ("--no-check", false),
    ("--paranoid", false),
];
const EXPLAIN_FLAGS: FlagSpec = &[
    ("--patterns", true),
    ("--random", true),
    ("--seed", true),
    ("--uncollapsed", false),
    ("--trace-window", true),
    ("--no-check", false),
];
const HEATMAP_FLAGS: FlagSpec = &[
    ("--patterns", true),
    ("--random", true),
    ("--seed", true),
    ("--uncollapsed", false),
    ("--top", true),
    ("--format", true),
    ("--no-check", false),
];
const ATPG_FLAGS: FlagSpec = &[("--max-frames", true), ("--random", true), ("--out", true)];
const GENERATE_FLAGS: FlagSpec = &[("--out", true)];
const IMPACT_FLAGS: FlagSpec = &[("--format", true)];
const MUTATE_FLAGS: FlagSpec = &[("--edit", true), ("--choice", true), ("--out", true)];

/// Rejects unknown flags, missing values, values on boolean flags, and
/// stray positionals. The single positional (circuit or benchmark name)
/// must come first.
fn validate_flags(
    cmd: &str,
    args: &[String],
    spec: FlagSpec,
) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags_n(cmd, args, spec, 1)
}

/// [`validate_flags`] generalized to commands taking up to `max_pos`
/// leading positionals (`fsim implications <circuit> <net>`).
fn validate_flags_n(
    cmd: &str,
    args: &[String],
    spec: FlagSpec,
    max_pos: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            let (name, inline_value) = match a.split_once('=') {
                Some((n, v)) => (n, Some(v)),
                None => (a.as_str(), None),
            };
            let Some(&(_, takes_value)) = spec.iter().find(|(n, _)| *n == name) else {
                return Err(err(format!("{cmd}: unknown flag {name} (try --help)")));
            };
            if takes_value {
                if inline_value.is_none() {
                    match args.get(i + 1) {
                        Some(v) if !v.starts_with("--") => i += 1,
                        _ => return Err(err(format!("{cmd}: flag {name} needs a value"))),
                    }
                }
            } else if inline_value.is_some() {
                return Err(err(format!("{cmd}: flag {name} does not take a value")));
            }
        } else if i >= max_pos {
            return Err(err(format!(
                "{cmd}: unexpected argument {a:?} (positionals must come first)"
            )));
        }
        i += 1;
    }
    Ok(())
}

/// Parses `--learn` / `--learn-frames` into [`LearnOptions`]. `None` when
/// learning is off; `--learn-frames` without `--learn` is rejected.
fn learn_opts(
    cmd: &str,
    args: &[String],
) -> Result<Option<LearnOptions>, Box<dyn std::error::Error>> {
    let frames = flag_value(args, "--learn-frames");
    if !has_flag(args, "--learn") {
        if frames.is_some() {
            return Err(err(format!("{cmd}: --learn-frames needs --learn")));
        }
        return Ok(None);
    }
    let frames = match frames {
        None => cfs_check::DEFAULT_LEARN_FRAMES,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                return Err(err(format!(
                    "{cmd}: --learn-frames wants a positive frame count, got {s:?}"
                )))
            }
        },
    };
    Ok(Some(LearnOptions { frames }))
}

/// Telemetry-related options shared by `sim` and `transition`.
struct TelemetryOpts {
    stats: bool,
    stats_json: Option<String>,
    trace_every: Option<usize>,
    /// Chrome Trace / Perfetto JSON output path (`--trace-out`).
    trace_out: Option<String>,
    /// Per-shard event-recorder tuning (`--trace-capacity`,
    /// `--trace-window`).
    trace_cfg: TraceConfig,
    /// Wall time the `cfs-check` preflight took, folded into the phase
    /// table of every snapshot the run emits.
    check_time: Duration,
}

impl TelemetryOpts {
    fn parse(args: &[String]) -> Result<Self, Box<dyn std::error::Error>> {
        let trace_every = match flag_value(args, "--trace-every") {
            Some(v) => {
                let n: usize = v.parse().map_err(|_| err("--trace-every needs a number"))?;
                if n == 0 {
                    return Err(err("--trace-every must be at least 1"));
                }
                Some(n)
            }
            None => None,
        };
        let mut trace_cfg = TraceConfig::default();
        if let Some(v) = flag_value(args, "--trace-capacity") {
            trace_cfg.capacity = v
                .parse()
                .map_err(|_| err("--trace-capacity needs a number"))?;
            if trace_cfg.capacity == 0 {
                return Err(err("--trace-capacity must be at least 1"));
            }
        }
        // One quiescence-window source of truth: the engine gate
        // (`--quiesce-window`) and the trace recorder (`--trace-window`)
        // must agree. With only the gate flag set (and nonzero), the
        // recorder follows it; giving both with different values is an
        // error rather than a silent disagreement.
        let gate_window: Option<u32> = match flag_value(args, "--quiesce-window") {
            Some(v) => Some(
                v.parse()
                    .map_err(|_| err("--quiesce-window needs a number (0 disables)"))?,
            ),
            None => None,
        };
        if let Some(v) = flag_value(args, "--trace-window") {
            let w: u32 = v
                .parse()
                .map_err(|_| err("--trace-window needs a number (0 disables)"))?;
            if let Some(g) = gate_window {
                if g != w {
                    return Err(err(format!(
                        "--trace-window {w} disagrees with --quiesce-window {g}; \
                         give one flag, or the same value to both"
                    )));
                }
            }
            trace_cfg.quiescence_window = w;
        } else if let Some(g) = gate_window {
            if g > 0 {
                trace_cfg.quiescence_window = g;
            }
        }
        Ok(TelemetryOpts {
            stats: has_flag(args, "--stats"),
            stats_json: flag_value(args, "--stats-json").map(str::to_owned),
            trace_every,
            trace_out: flag_value(args, "--trace-out").map(str::to_owned),
            trace_cfg,
            check_time: Duration::ZERO,
        })
    }

    /// Whether the run needs the recording probe attached at all.
    fn enabled(&self) -> bool {
        self.stats
            || self.stats_json.is_some()
            || self.trace_every.is_some()
            || self.trace_out.is_some()
    }
}

/// Fault-sharding and engine options shared by `sim` and `transition`.
struct ParallelOpts {
    threads: usize,
    plan: ShardPlan,
    /// `--batch-windows` turns on the two-dimensional scheduler; `None`
    /// keeps the historical fault-shard-only dispatch.
    batch: Option<BatchOptions>,
    detections: Option<String>,
    /// `--baseline-out`: write a fate-baseline report for later
    /// `--incremental` runs once the run finishes.
    baseline_out: Option<String>,
    paranoid: bool,
    /// `--quiesce-window`: the engine's quiescence-gating window in
    /// patterns (0 = gating off). Applied to every engine the run
    /// builds; detections are bit-identical for every window.
    quiesce_window: u32,
}

impl ParallelOpts {
    fn parse(args: &[String]) -> Result<Self, Box<dyn std::error::Error>> {
        let threads = match flag_value(args, "--threads") {
            Some(v) => {
                let n: usize = v.parse().map_err(|_| err("--threads needs a number"))?;
                if n == 0 {
                    return Err(err("--threads must be at least 1"));
                }
                n
            }
            None => 1,
        };
        let plan = match flag_value(args, "--shard-plan") {
            Some(v) => ShardPlan::parse(v).ok_or_else(|| {
                err(format!(
                    "unknown shard plan {v:?} (round-robin, contiguous, level-aware, weight-aware)"
                ))
            })?,
            None => ShardPlan::RoundRobin,
        };
        let batch = match flag_value(args, "--batch-windows") {
            Some(v) => {
                let window: usize = v.parse().map_err(|_| {
                    err("--batch-windows needs a number (0 = one whole-run window)")
                })?;
                Some(BatchOptions {
                    window,
                    steal: has_flag(args, "--steal"),
                    ..BatchOptions::default()
                })
            }
            None => {
                if has_flag(args, "--steal") {
                    return Err(err("--steal needs --batch-windows"));
                }
                None
            }
        };
        let quiesce_window = match flag_value(args, "--quiesce-window") {
            Some(v) => v
                .parse()
                .map_err(|_| err("--quiesce-window needs a number (0 disables)"))?,
            None => 0,
        };
        Ok(ParallelOpts {
            threads,
            plan,
            batch,
            detections: flag_value(args, "--detections").map(str::to_owned),
            baseline_out: flag_value(args, "--baseline-out").map(str::to_owned),
            paranoid: has_flag(args, "--paranoid"),
            quiesce_window,
        })
    }

    /// Fault-shard count: `--steal` overshards 2× so idle workers have
    /// spare runnable shards to take; otherwise one shard per worker.
    fn shards(&self) -> usize {
        match &self.batch {
            Some(b) if b.steal => self.threads * 2,
            _ => self.threads,
        }
    }
}

/// A concurrent-variant option set with the CLI's gating window applied.
fn stuck_options(variant: CsimVariant, par: &ParallelOpts) -> CsimOptions {
    CsimOptions {
        quiesce_window: par.quiesce_window,
        ..variant.options()
    }
}

/// Transition options with the CLI's gating window applied.
fn transition_options(par: &ParallelOpts) -> TransitionOptions {
    TransitionOptions {
        quiesce_window: par.quiesce_window,
        ..TransitionOptions::default()
    }
}

/// Pattern-granular checkpointing options (`--checkpoint-every`,
/// `--checkpoint-out`, `--resume-from`). A checkpoint captures one
/// serial engine at a pattern boundary, so the flags refuse the sharded,
/// batched, and traced dispatches up front.
struct CheckpointOpts {
    /// Snapshot cadence in patterns.
    every: Option<usize>,
    /// Directory receiving `ckpt-NNNNNN.bin` snapshots.
    out: Option<String>,
    /// Checkpoint file to restore before the first pattern.
    resume: Option<String>,
}

impl CheckpointOpts {
    fn parse(
        args: &[String],
        par: &ParallelOpts,
        tel: &TelemetryOpts,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let every = match flag_value(args, "--checkpoint-every") {
            Some(v) => {
                let n: usize = v
                    .parse()
                    .map_err(|_| err("--checkpoint-every needs a number"))?;
                if n == 0 {
                    return Err(err("--checkpoint-every must be at least 1"));
                }
                Some(n)
            }
            None => None,
        };
        let out = flag_value(args, "--checkpoint-out").map(str::to_owned);
        if every.is_some() != out.is_some() {
            return Err(err(
                "--checkpoint-every and --checkpoint-out go together (cadence and directory)",
            ));
        }
        let ck = CheckpointOpts {
            every,
            out,
            resume: flag_value(args, "--resume-from").map(str::to_owned),
        };
        if ck.active() {
            if par.threads > 1 {
                return Err(err(
                    "checkpointing captures one serial engine; it needs --threads 1",
                ));
            }
            if par.batch.is_some() {
                return Err(err("checkpointing cannot combine with --batch-windows"));
            }
            if tel.trace_out.is_some() {
                return Err(err("checkpointing cannot combine with --trace-out"));
            }
        }
        Ok(ck)
    }

    /// Whether the run writes or restores checkpoints at all.
    fn active(&self) -> bool {
        self.every.is_some() || self.resume.is_some()
    }
}

/// Loads and deserializes a `--resume-from` checkpoint file. Corrupt or
/// mismatched files are diagnosed inputs (exit 2), not operational
/// failures.
fn load_checkpoint_file(path: &str) -> Result<Checkpoint, Box<dyn std::error::Error>> {
    let bytes = fs::read(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    Checkpoint::from_bytes(&bytes)
        .map_err(|e| diag(format!("error: K001 [checkpoint-invalid] {path}: {e}")))
}

/// Serializes one checkpoint into `dir/ckpt-NNNNNN.bin` (the number is
/// the pattern index the snapshot covers), creating `dir` on first use.
fn write_checkpoint_file(
    dir: &str,
    ckpt: &Checkpoint,
) -> Result<String, Box<dyn std::error::Error>> {
    fs::create_dir_all(dir).map_err(|e| err(format!("cannot create {dir}: {e}")))?;
    let path = format!("{dir}/ckpt-{:06}.bin", ckpt.pattern_index());
    fs::write(&path, ckpt.to_bytes()).map_err(|e| err(format!("cannot write {path}: {e}")))?;
    Ok(path)
}

/// Writes the deterministic detection list: one `pattern fault` line per
/// detected fault, sorted by pattern then fault index. Byte-identical for
/// every thread count and shard plan.
fn write_detections(
    path: &str,
    statuses: &[FaultStatus],
) -> Result<(), Box<dyn std::error::Error>> {
    let dets = detections_of(statuses);
    let mut text = String::with_capacity(dets.len() * 12);
    for (fault, pattern) in &dets {
        text.push_str(&format!("{pattern} {fault}\n"));
    }
    fs::write(path, text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
    println!("wrote {} detections to {path}", dets.len());
    Ok(())
}

/// How a run's per-simulated-fault statuses map back onto the full
/// enumeration universe — and which universe-reduction counters the
/// driver stamps onto the telemetry snapshot. Both rewrites happen
/// before the first pattern, so the probes never see them.
#[derive(Clone, Copy)]
enum Expansion<'a, F> {
    /// The simulated fault list is the reported universe as-is.
    Verbatim,
    /// `--prune`: class representatives expand to the full uncollapsed
    /// universe; statically-pruned faults report untestable.
    Pruned(&'a PrunedUniverse<F>),
    /// `--incremental`: the affected cone expands to the full uncollapsed
    /// universe; unaffected faults copy their baseline fate verbatim.
    Incremental {
        universe: &'a ImpactUniverse<F>,
        baseline: &'a [FaultStatus],
    },
}

impl<F: Copy> Expansion<'_, F> {
    /// Expands the report's statuses to full-universe indices, so every
    /// report and detection list downstream speaks one index language.
    fn expand(&self, report: &mut FaultSimReport) {
        match self {
            Expansion::Verbatim => {}
            Expansion::Pruned(u) => report.statuses = u.expand_statuses(&report.statuses),
            Expansion::Incremental { universe, baseline } => {
                report.statuses = universe.expand_statuses(&report.statuses, baseline);
            }
        }
    }

    /// Stamps the universe-reduction counters onto a telemetry snapshot.
    fn stamp(&self, snap: &mut MetricsSnapshot) {
        match self {
            Expansion::Verbatim => {}
            Expansion::Pruned(u) => {
                snap.faults_full = u.stats.full as u64;
                snap.faults_sim = u.stats.sim as u64;
                snap.pruned_unexcitable = u.stats.unexcitable as u64;
                snap.pruned_unobservable = u.stats.unobservable as u64;
                snap.pruned_conflict = u.stats.conflict as u64;
            }
            Expansion::Incremental { universe, .. } => {
                snap.faults_full = universe.stats.full as u64;
                snap.faults_sim = universe.stats.affected as u64;
                snap.faults_affected = universe.stats.affected as u64;
                snap.faults_transferred = universe.stats.transferred as u64;
            }
        }
    }
}

/// `--paranoid` on an `--incremental` run: cold-re-simulates the full
/// edited universe through `cold_run` and cross-checks every transferred
/// fate against it. A mismatch means the cone-transfer argument was
/// violated (`I003`) — diagnostics print and the run exits with status 2.
fn verify_incremental<F: Copy>(
    circuit: &str,
    exp: Expansion<'_, F>,
    paranoid: bool,
    incremental: &[FaultStatus],
    cold_run: impl FnOnce(&[F]) -> Vec<FaultStatus>,
) -> Result<(), Box<dyn std::error::Error>> {
    let Expansion::Incremental { universe, .. } = exp else {
        return Ok(());
    };
    if !paranoid {
        return Ok(());
    }
    let cold = cold_run(&universe.full);
    let mut report = cfs_check::Report::new(circuit);
    let mismatches = cross_check_fates(universe, incremental, &cold, &mut report);
    if mismatches > 0 {
        return Err(diag(format!(
            "{}fsim: {mismatches} transferred fate(s) disagree with the cold full re-run",
            report.render_text()
        )));
    }
    println!(
        "paranoid: all {} transferred fate(s) agree with a cold full re-run",
        universe.stats.transferred
    );
    Ok(())
}

/// FNV-1a over the formatted pattern lines, masked to 53 bits so the
/// fingerprint survives a round trip through JSON's doubles. Guards an
/// `--incremental` run against replaying a different stimulus than the
/// baseline recorded — transferred first-detection patterns would be
/// meaningless.
fn pattern_fingerprint(patterns: &[Vec<Logic>]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in patterns {
        for b in format_pattern(p).bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h = (h ^ u64::from(b'\n')).wrapping_mul(PRIME);
    }
    h & ((1 << 53) - 1)
}

/// Baseline status text: one token per full-universe fault — `u`
/// undetected, `x` untestable, or the 0-based first-detection pattern.
fn statuses_to_text(statuses: &[FaultStatus]) -> String {
    let tokens: Vec<String> = statuses
        .iter()
        .map(|s| match s {
            FaultStatus::Undetected => "u".to_owned(),
            FaultStatus::Untestable => "x".to_owned(),
            FaultStatus::Detected { pattern } => pattern.to_string(),
        })
        .collect();
    tokens.join(" ")
}

fn statuses_from_text(text: &str) -> Result<Vec<FaultStatus>, String> {
    text.split_whitespace()
        .map(|tok| match tok {
            "u" => Ok(FaultStatus::Undetected),
            "x" => Ok(FaultStatus::Untestable),
            n => n
                .parse::<usize>()
                .map(|pattern| FaultStatus::Detected { pattern })
                .map_err(|_| format!("bad status token {tok:?} (u, x, or a pattern number)")),
        })
        .collect()
}

/// Writes a fate-baseline report (`--baseline-out`): the canonical
/// `.bench` text, a stimulus fingerprint, and one status per
/// full-universe fault — everything a later `--incremental` run needs.
fn write_baseline(
    path: &str,
    model: &str,
    universe: &str,
    c: &Circuit,
    patterns: &[Vec<Logic>],
    statuses: &[FaultStatus],
) -> Result<(), Box<dyn std::error::Error>> {
    let mut out = String::from("{\"type\":\"fsim-baseline\",\"model\":");
    write_json_string(&mut out, model);
    out.push_str(",\"universe\":");
    write_json_string(&mut out, universe);
    out.push_str(",\"circuit\":");
    write_json_string(&mut out, c.name());
    out.push_str(&format!(
        ",\"patterns\":{},\"pattern_hash\":{}",
        patterns.len(),
        pattern_fingerprint(patterns)
    ));
    out.push_str(",\"inputs\":[");
    for (i, &id) in c.inputs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, c.gate(id).name());
    }
    out.push_str(&format!("],\"faults\":{}", statuses.len()));
    out.push_str(",\"bench\":");
    write_json_string(&mut out, &write_bench(c));
    out.push_str(",\"statuses\":");
    write_json_string(&mut out, &statuses_to_text(statuses));
    out.push_str("}\n");
    fs::write(path, out).map_err(|e| err(format!("cannot write {path}: {e}")))?;
    println!(
        "wrote {model} baseline ({} faults) to {path}",
        statuses.len()
    );
    Ok(())
}

/// A parsed `--baseline-report` file: the pre-edit circuit (rebuilt from
/// its recorded canonical text, with provenance for diff spans) and its
/// full-universe fates.
struct Baseline {
    circuit: Circuit,
    provenance: BenchProvenance,
    statuses: Vec<FaultStatus>,
    patterns: usize,
    pattern_hash: u64,
}

/// Loads and structurally validates a baseline report. Model or universe
/// mismatches are `I002` diagnostics (exit 2), not operational errors:
/// the file is a valid baseline, just not for this run.
fn load_baseline(
    path: &str,
    model: &str,
    universe: &str,
) -> Result<Baseline, Box<dyn std::error::Error>> {
    let text = fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let v = JsonValue::parse(text.trim())
        .map_err(|e| err(format!("{path}: not a baseline report: {e}")))?;
    let field = |key: &str| -> Result<&str, Box<dyn std::error::Error>> {
        v.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err(format!("{path}: not a baseline report (missing {key:?})")))
    };
    if field("type")? != "fsim-baseline" {
        return Err(err(format!("{path}: not a baseline report")));
    }
    let got_model = field("model")?;
    if got_model != model {
        return Err(diag(format!(
            "error: I002 [baseline-invalidated] {path} records {got_model} fates, \
             but this is a {model} run"
        )));
    }
    let got_universe = field("universe")?;
    if got_universe != universe {
        return Err(diag(format!(
            "error: I002 [baseline-invalidated] {path} records the {got_universe} \
             universe, but this run reports the {universe} universe"
        )));
    }
    let name = field("circuit")?.to_owned();
    let bench = field("bench")?;
    let (circuit, provenance) = parse_bench_with_provenance(&name, bench)
        .map_err(|e| err(format!("{path}: embedded bench text does not parse: {e}")))?;
    let statuses =
        statuses_from_text(field("statuses")?).map_err(|e| err(format!("{path}: {e}")))?;
    let faults = v.get("faults").and_then(JsonValue::as_u64).ok_or_else(|| {
        err(format!(
            "{path}: not a baseline report (missing \"faults\")"
        ))
    })?;
    if statuses.len() as u64 != faults {
        return Err(err(format!(
            "{path}: records {faults} faults but {} statuses",
            statuses.len()
        )));
    }
    let patterns = v
        .get("patterns")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| {
            err(format!(
                "{path}: not a baseline report (missing \"patterns\")"
            ))
        })?;
    let pattern_hash = v
        .get("pattern_hash")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| {
            err(format!(
                "{path}: not a baseline report (missing \"pattern_hash\")"
            ))
        })?;
    Ok(Baseline {
        circuit,
        provenance,
        statuses,
        patterns: patterns as usize,
        pattern_hash,
    })
}

/// Diffs the baseline circuit against the edited one, validates that the
/// baseline's stimulus replays here, prints the impact findings, and
/// classifies the edited universe. `I002` (changed inputs, different
/// stimulus) refuses with exit 2 — transferred fates would be unsound.
fn prepare_incremental<F: Copy>(
    edited: &Circuit,
    baseline: Baseline,
    patterns: &[Vec<Logic>],
    classify: fn(&Circuit, &Circuit, &ImpactAnalysis) -> ImpactUniverse<F>,
) -> Result<(ImpactUniverse<F>, Vec<FaultStatus>), Box<dyn std::error::Error>> {
    if patterns.len() != baseline.patterns || pattern_fingerprint(patterns) != baseline.pattern_hash
    {
        return Err(diag(format!(
            "error: I002 [baseline-invalidated] this run replays {} pattern(s) but the \
             baseline recorded {} (fingerprint mismatch): first-detection patterns would \
             not transfer; re-run with the baseline's --patterns/--random/--seed, or \
             record a new baseline with --baseline-out",
            patterns.len(),
            baseline.patterns
        )));
    }
    let diff = diff_netlists(&baseline.circuit, edited, Some(&baseline.provenance), None);
    let analysis = impact_analysis(&baseline.circuit, edited, diff);
    let mut report = cfs_check::Report::new(edited.name());
    impact_findings(&analysis, &mut report);
    if !report.diagnostics.is_empty() {
        print!("{}", report.render_text());
    }
    if report.has_errors() {
        return Err(diag(
            "fsim: the baseline does not apply to this netlist (see I002 above)".to_owned(),
        ));
    }
    let universe = classify(&baseline.circuit, edited, &analysis);
    if baseline.statuses.len() != universe.stats.baseline_full {
        return Err(err(format!(
            "baseline records {} statuses but its bench text enumerates {} faults",
            baseline.statuses.len(),
            universe.stats.baseline_full
        )));
    }
    Ok((universe, baseline.statuses))
}

/// Prints what an `--incremental` run is about to simulate.
fn print_impact_banner(model: &str, stats: &ImpactStats) {
    println!(
        "incremental: {} of {} {model} faults affected, {} fates transfer from the \
         baseline; re-simulating {:.1}% of the universe",
        stats.affected,
        stats.full,
        stats.transferred,
        100.0 * stats.ratio()
    );
}

fn load_circuit(spec: &str) -> Result<Circuit, Box<dyn std::error::Error>> {
    if let Some(name) = spec.strip_prefix('@') {
        if name == "s27" {
            return Ok(cfs_netlist::data::s27());
        }
        return cfs_netlist::generate::benchmark(name)
            .ok_or_else(|| err(format!("unknown built-in circuit {name:?}")));
    }
    let text = fs::read_to_string(spec).map_err(|e| err(format!("cannot read {spec}: {e}")))?;
    Ok(parse_bench(circuit_name_of(spec), &text)?)
}

/// Display name of a circuit spec: the file stem, or the built-in name.
fn circuit_name_of(spec: &str) -> &str {
    spec.strip_prefix('@').unwrap_or_else(|| {
        std::path::Path::new(spec)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("circuit")
    })
}

/// Runs the full `cfs-check` analysis over a circuit spec. Files are
/// analyzed as raw source so spans point at the actual file lines;
/// built-ins go through their canonical serialization.
fn check_spec(spec: &str) -> Result<cfs_check::Report, Box<dyn std::error::Error>> {
    if spec.starts_with('@') {
        return Ok(cfs_check::check_circuit(&load_circuit(spec)?));
    }
    let text = fs::read_to_string(spec).map_err(|e| err(format!("cannot read {spec}: {e}")))?;
    Ok(cfs_check::check_bench_source(circuit_name_of(spec), &text))
}

/// Loads a circuit for simulation, running the `cfs-check` preflight
/// first (unless `--no-check`): on error-severity findings the
/// diagnostics go to stderr and the run refuses to start. Returns the
/// circuit and the preflight's wall time for the phase table.
fn load_circuit_checked(
    spec: &str,
    args: &[String],
) -> Result<(Circuit, Duration), Box<dyn std::error::Error>> {
    if has_flag(args, "--no-check") {
        return Ok((load_circuit(spec)?, Duration::ZERO));
    }
    let started = Instant::now();
    let report = check_spec(spec)?;
    let elapsed = started.elapsed();
    if report.has_errors() {
        eprint!("{}", report.render_text());
        return Err(err(format!(
            "{spec}: refusing to simulate a netlist with check errors (use --no-check to bypass)"
        )));
    }
    Ok((load_circuit(spec)?, elapsed))
}

fn cmd_check(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("check", args, CHECK_FLAGS)?;
    let spec = args.first().ok_or_else(|| err("check: missing circuit"))?;
    let format = flag_value(args, "--format").unwrap_or("text");
    let report = check_spec(spec)?;
    match format {
        "text" => print!("{}", report.render_text()),
        "json" => println!("{}", report.render_json()),
        other => return Err(err(format!("unknown format {other:?} (text, json)"))),
    }
    if report.has_errors() {
        return Err(err(format!(
            "{spec}: {} error(s)",
            report.count(cfs_check::Severity::Error)
        )));
    }
    Ok(())
}

/// `fsim analyze`: run the fault-universe analyses and report how far they
/// shrink the stuck-at and transition universes, plus the per-net findings.
fn cmd_analyze(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("analyze", args, ANALYZE_FLAGS)?;
    let spec = args
        .first()
        .ok_or_else(|| err("analyze: missing circuit"))?;
    let format = flag_value(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(err(format!("unknown format {format:?} (text, json)")));
    }
    // Files are analyzed with provenance so findings carry .bench spans;
    // built-ins have no source file to point at.
    let (c, prov) = if spec.starts_with('@') {
        (load_circuit(spec)?, None)
    } else {
        let text = fs::read_to_string(spec).map_err(|e| err(format!("cannot read {spec}: {e}")))?;
        let (c, p) = parse_bench_with_provenance(circuit_name_of(spec), &text)?;
        (c, Some(p))
    };
    let learn = learn_opts("analyze", args)?;
    let analysis = analyze_circuit(&c);
    let mut stuck = prune_stuck_at(&c, &analysis);
    let mut transition = prune_transition(&c, &analysis);
    // With --learn the reported universes are the learned ones: the F004
    // fates flow into the findings below exactly as the base prunes do.
    let learned = learn.map(|options| {
        let graph = ImplicationGraph::build(&c, &analysis, options);
        let ls = prune_stuck_at_learned(&c, &analysis, &graph);
        stuck = ls.universe.clone();
        transition = prune_transition_learned(&c, &analysis, &graph);
        (graph, ls)
    });
    let dom = dominance_collapse(&c);
    let mut report = cfs_check::Report::new(c.name());
    analysis_findings(
        &c,
        &analysis,
        &stuck,
        &transition,
        prov.as_ref(),
        &mut report,
    );
    if let Some((_, ls)) = &learned {
        learn_findings(&c, ls, prov.as_ref(), &mut report);
    }
    let constant_nets = (0..c.num_nodes())
        .filter(|&i| analysis.constant_of(GateId::from_index(i)).is_some())
        .count();
    let observable = (0..c.num_nodes())
        .filter(|&i| analysis.is_observable(GateId::from_index(i)))
        .count();
    let s = &stuck.stats;
    let t = &transition.stats;
    if format == "json" {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"nodes\":{},\"constant_nets\":{constant_nets},\"observable_nodes\":{observable},",
            c.num_nodes()
        ));
        out.push_str(&format!(
            "\"stuck\":{{\"full\":{},\"classes\":{},\"sim\":{},\"unexcitable\":{},\"unobservable\":{},\"conflict\":{},\"ratio\":{:.4}}},",
            s.full, s.classes, s.sim, s.unexcitable, s.unobservable, s.conflict, s.ratio()
        ));
        out.push_str(&format!(
            "\"transition\":{{\"full\":{},\"sim\":{},\"unexcitable\":{},\"unobservable\":{},\"conflict\":{},\"ratio\":{:.4}}},",
            t.full, t.sim, t.unexcitable, t.unobservable, t.conflict, t.ratio()
        ));
        if let Some((graph, ls)) = &learned {
            out.push_str(&format!(
                "\"learn\":{{\"frames\":{},\"direct_edges\":{},\"learned_edges\":{},\"dominance_pairs\":{}}},",
                graph.frames(),
                graph.num_direct(),
                graph.num_learned(),
                ls.dominance.len()
            ));
        }
        out.push_str(&format!(
            "\"dominance\":{{\"classes\":{},\"edges\":{},\"kept\":{},\"dropped\":{}}},",
            dom.base.num_classes(),
            dom.edges.len(),
            dom.kept.len(),
            dom.dropped()
        ));
        out.push_str(&format!("\"findings\":{}}}", report.render_json()));
        println!("{out}");
        return Ok(());
    }
    println!("{c}");
    println!(
        "value reachability: {constant_nets} constant net(s), {observable}/{} nodes observable",
        c.num_nodes()
    );
    if let Some((graph, ls)) = &learned {
        println!(
            "implication learning: {} direct + {} learned edge(s) over {} frame(s), \
             {} dominance pair(s)",
            graph.num_direct(),
            graph.num_learned(),
            graph.frames(),
            ls.dominance.len()
        );
    }
    let conflict_part = |n: usize| {
        if learned.is_some() {
            format!(", {n} conflict-untestable")
        } else {
            String::new()
        }
    };
    println!(
        "stuck-at: {} faults, {} exact classes, {} simulated \
         (pruned {}: {} unexcitable, {} unobservable{}; {:.1}% of full)",
        s.full,
        s.classes,
        s.sim,
        s.pruned(),
        s.unexcitable,
        s.unobservable,
        conflict_part(s.conflict),
        100.0 * s.ratio()
    );
    println!(
        "dominance: {} edge(s), {} of {} classes kept as analysis targets",
        dom.edges.len(),
        dom.kept.len(),
        dom.base.num_classes()
    );
    println!(
        "transition: {} faults, {} simulated \
         (pruned {}: {} unexcitable, {} unobservable{}; {:.1}% of full)",
        t.full,
        t.sim,
        t.pruned(),
        t.unexcitable,
        t.unobservable,
        conflict_part(t.conflict),
        100.0 * t.ratio()
    );
    if !report.diagnostics.is_empty() {
        println!();
        print!("{}", report.render_text());
    }
    Ok(())
}

/// Diagnostic codes minted by the CLI layer itself (not `cfs-check`
/// rules): operational inputs the driver rejects with exit 2.
const CLI_CODES: &[(&str, &str, Severity, &str)] = &[
    (
        "K001",
        "checkpoint-invalid",
        Severity::Error,
        "a --resume-from file is corrupt or truncated",
    ),
    (
        "K002",
        "checkpoint-mismatch",
        Severity::Error,
        "a checkpoint does not match the circuit, fault set, or patterns of this run",
    ),
    (
        "E001",
        "unknown-fault-id",
        Severity::Error,
        "an explain fault id is outside the selected fault universe",
    ),
    (
        "E002",
        "unknown-rule-code",
        Severity::Error,
        "a rules query names a diagnostic code that does not exist",
    ),
    (
        "E003",
        "unknown-net",
        Severity::Error,
        "an implications query names a net the circuit does not contain",
    ),
];

/// `fsim rules`: the diagnostic-code registry, straight from
/// [`RuleCode::ALL`] plus the CLI-layer codes — the single source the
/// docs table is checked against.
fn cmd_rules(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("rules", args, RULES_FLAGS)?;
    let format = flag_value(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(err(format!("unknown format {format:?} (text, json)")));
    }
    let filter = args.first().filter(|a| !a.starts_with("--"));
    let rows: Vec<(String, &str, Severity, &str)> = RuleCode::ALL
        .iter()
        .map(|&code| {
            (
                code.code().to_owned(),
                code.slug(),
                code.default_severity(),
                code.description(),
            )
        })
        .chain(
            CLI_CODES
                .iter()
                .map(|&(code, slug, sev, desc)| (code.to_owned(), slug, sev, desc)),
        )
        .collect();
    let rows: Vec<_> = match filter {
        None => rows,
        Some(wanted) => {
            let hits: Vec<_> = rows
                .into_iter()
                .filter(|(code, slug, ..)| code == wanted || *slug == wanted.as_str())
                .collect();
            if hits.is_empty() {
                return Err(diag(format!(
                    "error: E002 [unknown-rule-code] {wanted:?} names no diagnostic \
                     (try `fsim rules` for the full list)"
                )));
            }
            hits
        }
    };
    if format == "json" {
        let mut out = String::from("[");
        for (i, (code, slug, sev, desc)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{code}\",\"slug\":\"{slug}\",\"severity\":\"{}\",\"description\":\"{desc}\"}}",
                sev.name()
            ));
        }
        out.push(']');
        println!("{out}");
        return Ok(());
    }
    for (code, slug, sev, desc) in &rows {
        println!("{code}  {:<7}  {slug:<32}  {desc}", sev.name());
    }
    Ok(())
}

/// `fsim implications <circuit> <net>`: query the implication graph for
/// everything a net's binary values force, across time frames.
fn cmd_implications(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags_n("implications", args, IMPLICATIONS_FLAGS, 2)?;
    let spec = args
        .first()
        .ok_or_else(|| err("implications: missing circuit"))?;
    let net_name = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| err("implications: missing net name (fsim implications <circuit> <net>)"))?;
    let format = flag_value(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(err(format!("unknown format {format:?} (text, json)")));
    }
    let frames = match flag_value(args, "--learn-frames") {
        None => cfs_check::DEFAULT_LEARN_FRAMES,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                return Err(err(format!(
                    "implications: --learn-frames wants a positive frame count, got {s:?}"
                )))
            }
        },
    };
    let c = load_circuit(spec)?;
    let Some(net) = c.find(net_name) else {
        return Err(diag(format!(
            "error: E003 [unknown-net] {} has no net {net_name:?}",
            c.name()
        )));
    };
    let analysis = analyze_circuit(&c);
    let graph = ImplicationGraph::build(&c, &analysis, LearnOptions { frames });
    let horizon = 2 * (frames - 1);
    if format == "json" {
        let mut out = format!(
            "{{\"circuit\":\"{}\",\"net\":\"{net_name}\",\"frames\":{frames},\
             \"valid_from_cycle\":{horizon},\"implications\":[",
            c.name()
        );
        let mut first = true;
        for value in [false, true] {
            for imp in graph.implications_of(net, value) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"source_value\":{},\"target\":\"{}\",\"value\":{},\"delta\":{},\"learned\":{}}}",
                    u8::from(value),
                    c.gate(imp.target).name(),
                    u8::from(imp.value),
                    imp.delta,
                    imp.learned
                ));
            }
        }
        out.push_str("]}");
        println!("{out}");
        return Ok(());
    }
    println!(
        "implications of {} net {net_name:?} over {frames} frame(s) \
         ({} direct + {} learned edges in the graph)",
        c.name(),
        graph.num_direct(),
        graph.num_learned()
    );
    for value in [false, true] {
        let imps = graph.implications_of(net, value);
        println!(
            "  {net_name}={}: {} implication(s)",
            u8::from(value),
            imps.len()
        );
        for imp in imps {
            let frame = match imp.delta {
                0 => "@t".to_owned(),
                d if d > 0 => format!("@t+{d}"),
                d => format!("@t{d}"),
            };
            let learned = if imp.learned { "  (learned)" } else { "" };
            println!(
                "    -> {}={} {frame}{learned}",
                c.gate(imp.target).name(),
                u8::from(imp.value)
            );
        }
    }
    if horizon > 0 {
        println!("facts are guaranteed at steady-state cycles t >= {horizon}");
    }
    Ok(())
}

/// Loads a circuit spec together with its source provenance when the spec
/// is a file; built-ins have no source lines to point at.
fn load_circuit_with_provenance(
    spec: &str,
) -> Result<(Circuit, Option<BenchProvenance>), Box<dyn std::error::Error>> {
    if spec.starts_with('@') {
        return Ok((load_circuit(spec)?, None));
    }
    let text = fs::read_to_string(spec).map_err(|e| err(format!("cannot read {spec}: {e}")))?;
    let (c, p) = parse_bench_with_provenance(circuit_name_of(spec), &text)?;
    Ok((c, Some(p)))
}

/// One human-readable line per structural edit.
fn render_edit(e: &cfs_check::NetlistEdit) -> String {
    let detail = match &e.kind {
        EditKind::Retyped { from, to } => format!(" ({from} -> {to})"),
        EditKind::Rewired { from, to } => {
            format!(" ({} -> {})", from.join(", "), to.join(", "))
        }
        _ => String::new(),
    };
    let lines = match (e.base_line, e.edited_line) {
        (Some(b), Some(ed)) => format!("  [base:{b} edited:{ed}]"),
        (Some(b), None) => format!("  [base:{b}]"),
        (None, Some(ed)) => format!("  [edited:{ed}]"),
        (None, None) => String::new(),
    };
    format!("  {:<14} {}{detail}{lines}", e.kind.label(), e.name)
}

/// `fsim impact <base> <edited>`: structural diff, affected-cone sizes,
/// and the stuck-at/transition transfer split — the static half of an
/// incremental re-simulation, without running any patterns.
fn cmd_impact(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let base_spec = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| err("impact: missing circuits (fsim impact <base> <edited>)"))?;
    let edited_spec = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| err("impact: missing edited circuit (fsim impact <base> <edited>)"))?;
    if let Some(stray) = args.get(2).filter(|a| !a.starts_with("--")) {
        return Err(err(format!(
            "impact: unexpected argument {stray:?} (the two circuits come first)"
        )));
    }
    validate_flags("impact", &args[2..], IMPACT_FLAGS)?;
    let format = flag_value(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(err(format!("unknown format {format:?} (text, json)")));
    }
    let (base, base_prov) = load_circuit_with_provenance(base_spec)?;
    let (edited, edited_prov) = load_circuit_with_provenance(edited_spec)?;
    let diff = diff_netlists(&base, &edited, base_prov.as_ref(), edited_prov.as_ref());
    let analysis = impact_analysis(&base, &edited, diff);
    let stuck = classify_stuck_at(&base, &edited, &analysis);
    let transition = classify_transition(&base, &edited, &analysis);
    let mut report = cfs_check::Report::new(edited.name());
    impact_findings(&analysis, &mut report);
    if format == "json" {
        let mut out = String::new();
        out.push_str("{\"base\":");
        write_json_string(&mut out, base.name());
        out.push_str(",\"edited\":");
        write_json_string(&mut out, edited.name());
        out.push_str(",\"diff\":{\"edits\":[");
        for (i, e) in analysis.diff.edits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_string(&mut out, &e.name);
            out.push_str(",\"kind\":");
            write_json_string(&mut out, e.kind.label());
            out.push_str(&format!(
                ",\"base_line\":{},\"edited_line\":{}}}",
                e.base_line.map_or("null".into(), |l| l.to_string()),
                e.edited_line.map_or("null".into(), |l| l.to_string())
            ));
        }
        out.push_str(&format!(
            "],\"inputs_changed\":{}}},",
            analysis.diff.inputs_changed
        ));
        out.push_str(&format!(
            "\"cone\":{{\"base_nodes\":{},\"edited_nodes\":{},\"affected_names\":{},\"disconnected\":{}}},",
            analysis.base_cone_nodes,
            analysis.edited_cone_nodes,
            analysis.affected_names.len(),
            analysis.disconnected
        ));
        for (key, s) in [("stuck", &stuck.stats), ("transition", &transition.stats)] {
            out.push_str(&format!(
                "\"{key}\":{{\"full\":{},\"affected\":{},\"transferred\":{},\"ratio\":{:.4}}},",
                s.full,
                s.affected,
                s.transferred,
                s.ratio()
            ));
        }
        out.push_str(&format!("\"findings\":{}}}", report.render_json()));
        println!("{out}");
        return Ok(());
    }
    println!("impact: {} -> {}", base.name(), edited.name());
    if analysis.diff.is_empty() {
        println!("no structural differences; every fault's fate transfers");
    } else {
        println!(
            "{} edit(s){}:",
            analysis.diff.edits.len(),
            if analysis.diff.inputs_changed {
                ", primary inputs changed"
            } else {
                ""
            }
        );
        const MAX_SHOWN: usize = 20;
        for e in analysis.diff.edits.iter().take(MAX_SHOWN) {
            println!("{}", render_edit(e));
        }
        if analysis.diff.edits.len() > MAX_SHOWN {
            println!("  ... {} more", analysis.diff.edits.len() - MAX_SHOWN);
        }
    }
    println!(
        "affected cone: {} node(s) in base, {} in edited, {} signal name(s){}",
        analysis.base_cone_nodes,
        analysis.edited_cone_nodes,
        analysis.affected_names.len(),
        if analysis.disconnected {
            " (includes disconnected logic)"
        } else {
            ""
        }
    );
    for (model, s) in [
        ("stuck-at", &stuck.stats),
        ("transition", &transition.stats),
    ] {
        println!(
            "{model}: {} of {} faults affected ({} transfer; re-simulate {:.1}%)",
            s.affected,
            s.full,
            s.transferred,
            100.0 * s.ratio()
        );
    }
    if !report.diagnostics.is_empty() {
        println!();
        print!("{}", report.render_text());
    }
    Ok(())
}

/// `fsim mutate <circuit> --edit KIND`: apply one deterministic scripted
/// edit and emit the mutated `.bench` text, for building incremental test
/// workloads without hand-editing netlists.
fn cmd_mutate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("mutate", args, MUTATE_FLAGS)?;
    let spec = args.first().ok_or_else(|| err("mutate: missing circuit"))?;
    let edit_name = flag_value(args, "--edit")
        .ok_or_else(|| err("mutate: missing --edit (retype, rewire, dead-logic)"))?;
    let edit = BenchEdit::parse(edit_name).ok_or_else(|| {
        err(format!(
            "unknown edit {edit_name:?} (retype, rewire, dead-logic)"
        ))
    })?;
    let choice: usize = match flag_value(args, "--choice") {
        Some(v) => v.parse().map_err(|_| err("--choice needs a number"))?,
        None => 0,
    };
    let c = load_circuit(spec)?;
    let candidates = edit_candidates(&c, edit);
    let applied = apply_edit(&c, edit, choice)?;
    if let Some(path) = flag_value(args, "--out") {
        fs::write(path, &applied.text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        println!(
            "{} (choice {} of {candidates}); wrote {path}",
            applied.description,
            choice % candidates.max(1)
        );
    } else {
        eprintln!(
            "{} (choice {} of {candidates})",
            applied.description,
            choice % candidates.max(1)
        );
        print!("{}", applied.text);
    }
    Ok(())
}

fn load_patterns(
    circuit: &Circuit,
    args: &[String],
    default_random: usize,
) -> Result<Vec<Vec<Logic>>, Box<dyn std::error::Error>> {
    if let Some(file) = flag_value(args, "--patterns") {
        let text = fs::read_to_string(file).map_err(|e| err(format!("cannot read {file}: {e}")))?;
        let mut patterns = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let p = parse_pattern(line).map_err(|e| err(format!("{file}:{}: {e}", lineno + 1)))?;
            if p.len() != circuit.num_inputs() {
                return Err(err(format!(
                    "{file}:{}: pattern has {} bits, circuit has {} inputs",
                    lineno + 1,
                    p.len(),
                    circuit.num_inputs()
                )));
            }
            patterns.push(p);
        }
        return Ok(patterns);
    }
    let n = match flag_value(args, "--random") {
        Some(v) => v.parse().map_err(|_| err("--random needs a number"))?,
        None => default_random,
    };
    let seed = match flag_value(args, "--seed") {
        Some(v) => v.parse().map_err(|_| err("--seed needs a number"))?,
        None => 1,
    };
    Ok(random_patterns(circuit, n, seed))
}

fn cmd_stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("stats", args, STATS_FLAGS)?;
    let spec = args.first().ok_or_else(|| err("stats: missing circuit"))?;
    let c = load_circuit(spec)?;
    println!("{c}");
    let all = enumerate_stuck_at(&c);
    let collapsed = collapse_stuck_at(&c);
    println!(
        "stuck-at faults: {} ({} collapsed, ratio {:.2})",
        all.len(),
        collapsed.num_classes(),
        collapsed.ratio()
    );
    println!("transition faults: {}", enumerate_transition(&c).len());
    let macros = extract_macros(&c, cfs_netlist::DEFAULT_MACRO_MAX_INPUTS);
    println!(
        "macro cells: {} ({:.2} gates/cell, {} KiB of LUTs)",
        macros.num_cells(),
        c.num_comb_gates() as f64 / macros.num_cells() as f64,
        macros.lut_memory_bytes() / 1024
    );
    Ok(())
}

fn print_report(report: &FaultSimReport) {
    println!("{report}");
    println!(
        "  events: {}, faulty-machine evaluations: {}",
        report.events, report.evaluations
    );
}

type JsonlFile = JsonlWriter<io::BufWriter<fs::File>>;

fn open_jsonl(path: &Option<String>) -> Result<Option<JsonlFile>, Box<dyn std::error::Error>> {
    match path {
        Some(p) => {
            let file = fs::File::create(p).map_err(|e| err(format!("cannot write {p}: {e}")))?;
            Ok(Some(JsonlWriter::new(io::BufWriter::new(file))))
        }
        None => Ok(None),
    }
}

fn close_jsonl(
    jsonl: Option<JsonlFile>,
    path: &Option<String>,
) -> Result<(), Box<dyn std::error::Error>> {
    if let (Some(mut w), Some(p)) = (jsonl, path.as_ref()) {
        w.flush()
            .map_err(|e| err(format!("cannot write {p}: {e}")))?;
        println!("wrote telemetry to {p}");
    }
    Ok(())
}

/// Streams every per-pattern record plus the run summary as JSON lines.
fn emit_jsonl(
    w: &mut JsonlFile,
    metrics: &SimMetrics,
    snap: &MetricsSnapshot,
) -> Result<(), Box<dyn std::error::Error>> {
    for record in metrics.records() {
        w.write_pattern(record)
            .map_err(|e| err(format!("cannot write telemetry: {e}")))?;
    }
    w.write_summary(snap)
        .map_err(|e| err(format!("cannot write telemetry: {e}")))
}

fn trace_progress(metrics: &SimMetrics, pattern: usize, detected: usize, total: usize) {
    let (avg, events) = metrics
        .records()
        .last()
        .map(|r| (r.avg_list_len, r.counters.activations))
        .unwrap_or((0.0, 0));
    println!(
        "  pattern {pattern:>6}: detected {detected}/{total}  avg |F| {avg:.1}  events {events}"
    );
}

/// Cumulative state behind [`merged_trace_progress`]: how many patterns
/// were already replayed and the running detection count.
#[derive(Default)]
struct ProgressState {
    cursor: usize,
    detected: u64,
}

/// `--trace-every` under `--threads N`: replays the per-shard per-pattern
/// records up to `done` finished patterns and prints one merged line per
/// multiple of `every`. The caller invokes this from the `run_with`
/// after-block hook, when every shard has settled the block, so the merge
/// reads only finished records — the output is deterministic and identical
/// for every thread count (per-pattern counters sum across shards; the
/// mean list length over nodes sums because the shards partition the
/// fault universe over the same node array).
fn merged_trace_progress(
    shards: &[&SimMetrics],
    state: &mut ProgressState,
    every: usize,
    done: usize,
    total: usize,
) {
    while state.cursor < done {
        let p = state.cursor;
        let mut avg = 0.0;
        let mut events = 0u64;
        for m in shards {
            if let Some(r) = m.records().get(p) {
                state.detected += r.counters.detected;
                avg += r.avg_list_len;
                events += r.counters.activations;
            }
        }
        state.cursor += 1;
        if state.cursor.is_multiple_of(every) {
            println!(
                "  pattern {:>6}: detected {}/{total}  avg |F| {avg:.1}  events {events}",
                state.cursor, state.detected
            );
        }
    }
}

/// The probe attached by `--trace-out`: aggregate metrics and the event
/// recorder, driven by one engine pass.
type TraceProbe = PairProbe<SimMetrics, TraceRecorder>;

/// Converts the scheduler's run record into the trace crate's worker
/// tracks, shifting its task/steal timestamps (microseconds from
/// scheduler start) onto the recorders' epoch by `offset_micros` so the
/// tracks line up with the shard events.
fn sched_track_of(stats: Option<&SchedStats>, offset_micros: u64) -> Option<SchedTrack> {
    let st = stats?;
    Some(SchedTrack {
        workers: st.workers as u32,
        spans: st
            .spans
            .iter()
            .map(|s| SchedSpan {
                worker: s.worker,
                shard: s.shard,
                window: s.window,
                patterns: s.patterns,
                start: s.start_micros + offset_micros,
                end: s.end_micros + offset_micros,
            })
            .collect(),
        steals: st
            .steal_events
            .iter()
            .map(|e| SchedSteal {
                worker: e.worker,
                victim: e.victim,
                shard: e.shard,
                window: e.window,
                ts: e.ts_micros + offset_micros,
            })
            .collect(),
    })
}

/// Writes the Chrome Trace / Perfetto JSON document for a finished traced
/// run: one track per shard (fault ids remapped local→global through each
/// shard's map) plus the merged counter track, and — for batched runs —
/// one worker track per scheduler thread with task spans and steal
/// instants.
fn write_trace_file(
    path: &str,
    process_name: &str,
    shards: &[(Vec<TraceEvent>, &[usize])],
    sched: Option<&SchedTrack>,
    recorded: u64,
    dropped: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let tracks: Vec<TrackTrace<'_>> = shards
        .iter()
        .enumerate()
        .map(|(k, (events, map))| TrackTrace {
            label: format!("shard {k}"),
            events,
            fault_map: Some(map),
        })
        .collect();
    let file = fs::File::create(path).map_err(|e| err(format!("cannot write {path}: {e}")))?;
    let mut out = io::BufWriter::new(file);
    write_chrome_trace_with_sched(&mut out, process_name, &tracks, sched)
        .and_then(|()| out.flush())
        .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    if dropped > 0 {
        eprintln!(
            "fsim: note: trace ring overflowed; {dropped} oldest events were \
             discarded (raise --trace-capacity)"
        );
    }
    println!("wrote trace to {path} ({recorded} events recorded, {dropped} dropped)");
    Ok(())
}

/// One `--stats` line for the quiescence gate. Gated runs only: ungated
/// output stays byte-identical to what it always was.
fn print_quiesce_line(snap: &MetricsSnapshot) {
    if snap.quiesce_skips > 0 || snap.quiesce_wakes > 0 {
        println!(
            "  quiescence: {} sweep elements skipped, {} wakes",
            snap.quiesce_skips, snap.quiesce_wakes
        );
    }
}

/// The per-run detail blocks behind `--stats`: phase times and the two
/// engine histograms (only the concurrent simulators have these).
fn print_stats_detail(snap: &MetricsSnapshot, metrics: &SimMetrics) {
    print_quiesce_line(snap);
    print!("{}", render_phase_table(&snap.phases));
    print!(
        "{}",
        render_histogram("fault-list length per node", &metrics.list_len_hist)
    );
    print!(
        "{}",
        render_histogram("event-queue depth per level", &metrics.queue_depth_hist)
    );
}

/// One `--stats` line summarizing the two-dimensional scheduler's run.
/// Batched runs only: plain `--threads N` output stays byte-identical to
/// what it always was.
fn print_sched_line(par: &ParallelOpts, stats: Option<&SchedStats>, shards: usize) {
    if par.batch.is_none() {
        return;
    }
    if let Some(st) = stats {
        println!(
            "  scheduler: {} windows × {shards} shards = {} tasks on {} workers, {} steals",
            st.windows, st.tasks, st.workers, st.steals
        );
    }
}

/// Like [`print_stats_detail`], with the histograms merged across all
/// shard probes of a parallel run.
fn print_stats_detail_sharded<'a>(
    snap: &MetricsSnapshot,
    shards: impl Iterator<Item = &'a SimMetrics>,
) {
    let mut list_hist = Log2Histogram::default();
    let mut queue_hist = Log2Histogram::default();
    for m in shards {
        list_hist.merge(&m.list_len_hist);
        queue_hist.merge(&m.queue_depth_hist);
    }
    print_quiesce_line(snap);
    print!("{}", render_phase_table(&snap.phases));
    print!(
        "{}",
        render_histogram("fault-list length per node", &list_hist)
    );
    print!(
        "{}",
        render_histogram("event-queue depth per level", &queue_hist)
    );
}

fn run_stuck_instrumented(
    sim: &mut ConcurrentSim<SimMetrics>,
    circuit: &str,
    patterns: &[Vec<Logic>],
    trace_every: Option<usize>,
    total_faults: usize,
) -> FaultSimReport {
    let start = Instant::now();
    for (i, p) in patterns.iter().enumerate() {
        sim.step(p);
        if trace_every.is_some_and(|n| (i + 1) % n == 0) {
            trace_progress(sim.metrics(), i + 1, sim.detected(), total_faults);
        }
    }
    let cpu = start.elapsed();
    FaultSimReport {
        simulator: sim.name().to_owned(),
        circuit: circuit.to_owned(),
        patterns: patterns.len(),
        statuses: sim.statuses(),
        cpu,
        memory_bytes: sim.memory_bytes(),
        events: sim.events(),
        evaluations: sim.fault_evaluations(),
    }
}

/// `sim --simulator csim`: one variant, or all four under `--variant all`.
#[allow(clippy::too_many_arguments)]
fn run_csim_stuck(
    c: &Circuit,
    faults: &[StuckAt],
    patterns: &[Vec<Logic>],
    variant_name: &str,
    tel: &TelemetryOpts,
    par: &ParallelOpts,
    ck: &CheckpointOpts,
    exp: Expansion<'_, StuckAt>,
    keys: Option<&[u32]>,
) -> Result<(), Box<dyn std::error::Error>> {
    let variants: Vec<CsimVariant> = if variant_name == "all" {
        vec![
            CsimVariant::Base,
            CsimVariant::V,
            CsimVariant::M,
            CsimVariant::Mv,
        ]
    } else {
        vec![match variant_name {
            "base" => CsimVariant::Base,
            "v" => CsimVariant::V,
            "m" => CsimVariant::M,
            "mv" => CsimVariant::Mv,
            other => return Err(err(format!("unknown variant {other:?}"))),
        }]
    };
    if par.detections.is_some() && variants.len() > 1 {
        return Err(err("--detections needs a single --variant"));
    }
    if par.baseline_out.is_some() && variants.len() > 1 {
        return Err(err("--baseline-out needs a single --variant"));
    }
    if ck.active() {
        if variants.len() > 1 {
            return Err(err("checkpointing needs a single --variant"));
        }
        return run_csim_stuck_checkpointed(c, faults, patterns, variants[0], tel, par, ck, exp);
    }
    if tel.trace_out.is_some() {
        if variants.len() > 1 {
            return Err(err("--trace-out needs a single --variant"));
        }
        return run_csim_stuck_traced(c, faults, patterns, variants[0], tel, par, exp, keys);
    }
    if par.threads > 1 || par.batch.is_some() {
        return run_csim_stuck_sharded(c, faults, patterns, &variants, tel, par, exp, keys);
    }
    if !tel.enabled() && variants.len() == 1 {
        // Fast path: no probe attached, zero instrumentation cost.
        let mut sim = ConcurrentSim::new(c, faults, stuck_options(variants[0], par));
        if par.paranoid {
            sim.set_paranoid(true);
        }
        let mut report = sim.run(patterns);
        exp.expand(&mut report);
        print_report(&report);
        // Cold cross-check re-runs stay ungated on purpose: a gating bug
        // cannot mask itself from the paranoid comparison.
        verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
            ConcurrentSim::new(c, full, variants[0].options())
                .run(patterns)
                .statuses
        })?;
        if let Some(path) = &par.detections {
            write_detections(path, &report.statuses)?;
        }
        if let Some(path) = &par.baseline_out {
            write_baseline(path, "stuck", "uncollapsed", c, patterns, &report.statuses)?;
        }
        return Ok(());
    }
    let mut jsonl = open_jsonl(&tel.stats_json)?;
    let mut snaps = Vec::new();
    for &variant in &variants {
        let mut sim = ConcurrentSim::instrumented(c, faults, stuck_options(variant, par));
        if par.paranoid {
            sim.set_paranoid(true);
        }
        let mut report =
            run_stuck_instrumented(&mut sim, c.name(), patterns, tel.trace_every, faults.len());
        exp.expand(&mut report);
        print_report(&report);
        verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
            ConcurrentSim::new(c, full, variant.options())
                .run(patterns)
                .statuses
        })?;
        let mut snap = sim.snapshot();
        // Phase spans nest, so the wall clock is the honest total.
        snap.cpu_seconds = report.cpu.as_secs_f64();
        snap.phases.add(Phase::Check, tel.check_time);
        exp.stamp(&mut snap);
        if tel.stats {
            print_stats_detail(&snap, sim.metrics());
        }
        if let Some(w) = jsonl.as_mut() {
            emit_jsonl(w, sim.metrics(), &snap)?;
        }
        if let Some(path) = &par.detections {
            write_detections(path, &report.statuses)?;
        }
        if let Some(path) = &par.baseline_out {
            write_baseline(path, "stuck", "uncollapsed", c, patterns, &report.statuses)?;
        }
        snaps.push(snap);
    }
    if tel.stats || variants.len() > 1 {
        println!();
        print!("{}", render_summary_table(&snaps));
    }
    close_jsonl(jsonl, &tel.stats_json)
}

/// The `--checkpoint-every` / `--resume-from` path: one serial
/// instrumented engine stepped pattern by pattern, snapshotting the
/// complete engine state at checkpoint boundaries. A resumed run
/// restores its snapshot before the first pattern and replays only the
/// remainder; the report (statuses, detections, peak memory) is
/// bit-identical to the uninterrupted run.
#[allow(clippy::too_many_arguments)]
fn run_csim_stuck_checkpointed(
    c: &Circuit,
    faults: &[StuckAt],
    patterns: &[Vec<Logic>],
    variant: CsimVariant,
    tel: &TelemetryOpts,
    par: &ParallelOpts,
    ck: &CheckpointOpts,
    exp: Expansion<'_, StuckAt>,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = ConcurrentSim::instrumented(c, faults, stuck_options(variant, par));
    if par.paranoid {
        sim.set_paranoid(true);
    }
    let start_at = match &ck.resume {
        Some(path) => {
            let snap = load_checkpoint_file(path)?;
            sim.restore(&snap)
                .map_err(|e| diag(format!("error: K002 [checkpoint-mismatch] {path}: {e}")))?;
            let done = snap.pattern_index() as usize;
            if done > patterns.len() {
                return Err(err(format!(
                    "{path} already covers {done} pattern(s) but this run replays only {}",
                    patterns.len()
                )));
            }
            println!("resumed from {path} at pattern {done}");
            done
        }
        None => 0,
    };
    let mut ckpt_time = Duration::ZERO;
    let mut written = 0u32;
    let start = Instant::now();
    for (i, p) in patterns.iter().enumerate().skip(start_at) {
        sim.step(p);
        if tel.trace_every.is_some_and(|n| (i + 1) % n == 0) {
            trace_progress(sim.metrics(), i + 1, sim.detected(), faults.len());
        }
        if let (Some(every), Some(dir)) = (ck.every, ck.out.as_deref()) {
            // The final boundary is the finished report; no snapshot there.
            if (i + 1) % every == 0 && i + 1 < patterns.len() {
                let t = Instant::now();
                let snapshot = sim.checkpoint();
                write_checkpoint_file(dir, &snapshot)?;
                ckpt_time += t.elapsed();
                written += 1;
            }
        }
    }
    let cpu = start.elapsed();
    let mut report = FaultSimReport {
        simulator: sim.name().to_owned(),
        circuit: c.name().to_owned(),
        patterns: patterns.len(),
        statuses: sim.statuses(),
        cpu,
        memory_bytes: sim.memory_bytes(),
        events: sim.events(),
        evaluations: sim.fault_evaluations(),
    };
    if let Some(dir) = ck.out.as_deref() {
        if written > 0 {
            println!(
                "wrote {written} checkpoint(s) to {dir} ({:.1} ms)",
                ckpt_time.as_secs_f64() * 1e3
            );
        }
    }
    exp.expand(&mut report);
    print_report(&report);
    verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
        ConcurrentSim::new(c, full, variant.options())
            .run(patterns)
            .statuses
    })?;
    if tel.enabled() {
        let mut snap = sim.snapshot();
        snap.cpu_seconds = report.cpu.as_secs_f64();
        snap.phases.add(Phase::Check, tel.check_time);
        snap.phases.add(Phase::Checkpoint, ckpt_time);
        exp.stamp(&mut snap);
        if tel.stats {
            print_stats_detail(&snap, sim.metrics());
            println!();
            print!("{}", render_summary_table(std::slice::from_ref(&snap)));
        }
        let mut jsonl = open_jsonl(&tel.stats_json)?;
        if let Some(w) = jsonl.as_mut() {
            emit_jsonl(w, sim.metrics(), &snap)?;
        }
        close_jsonl(jsonl, &tel.stats_json)?;
    }
    if let Some(path) = &par.detections {
        write_detections(path, &report.statuses)?;
    }
    if let Some(path) = &par.baseline_out {
        write_baseline(path, "stuck", "uncollapsed", c, patterns, &report.statuses)?;
    }
    Ok(())
}

/// The `--threads N > 1` / `--batch-windows` path: fault-sharded engines
/// over a shared good machine, optionally under the two-dimensional
/// scheduler. `--trace-every` milestones merge the per-shard records into
/// one deterministic line per milestone (see [`merged_trace_progress`]);
/// per-pattern JSON records stay a serial concept, so `--stats-json`
/// carries only the merged summary record.
#[allow(clippy::too_many_arguments)]
fn run_csim_stuck_sharded(
    c: &Circuit,
    faults: &[StuckAt],
    patterns: &[Vec<Logic>],
    variants: &[CsimVariant],
    tel: &TelemetryOpts,
    par: &ParallelOpts,
    exp: Expansion<'_, StuckAt>,
    keys: Option<&[u32]>,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut jsonl = open_jsonl(&tel.stats_json)?;
    let mut snaps = Vec::new();
    for &variant in variants {
        let mut report = if tel.enabled() {
            let mut sim = ParallelSim::with_probes_sharded(
                c,
                faults,
                stuck_options(variant, par),
                par.threads,
                par.shards(),
                par.plan,
                keys,
                |_| SimMetrics::new(),
            );
            if par.paranoid {
                sim.set_paranoid(true);
            }
            let mut progress = ProgressState::default();
            let after = |s: &ParallelSim<SimMetrics>, done: usize| {
                if let Some(every) = tel.trace_every {
                    let shards: Vec<&SimMetrics> = s.shard_metrics().collect();
                    merged_trace_progress(&shards, &mut progress, every, done, faults.len());
                }
            };
            let report = match &par.batch {
                Some(b) => sim.run_batched_with(patterns, b, after),
                None => sim.run_with(patterns, after),
            };
            let mut snap = sim.snapshot();
            snap.cpu_seconds = report.cpu.as_secs_f64();
            snap.phases.add(Phase::Check, tel.check_time);
            exp.stamp(&mut snap);
            if tel.stats {
                print_sched_line(par, sim.sched_stats(), sim.num_shards());
                print_stats_detail_sharded(&snap, sim.shard_metrics());
            }
            if let Some(w) = jsonl.as_mut() {
                w.write_summary(&snap)
                    .map_err(|e| err(format!("cannot write telemetry: {e}")))?;
            }
            snaps.push(snap);
            report
        } else {
            let mut sim = ParallelSim::with_probes_sharded(
                c,
                faults,
                stuck_options(variant, par),
                par.threads,
                par.shards(),
                par.plan,
                keys,
                |_| NullProbe,
            );
            if par.paranoid {
                sim.set_paranoid(true);
            }
            match &par.batch {
                Some(b) => sim.run_batched(patterns, b),
                None => sim.run(patterns),
            }
        };
        exp.expand(&mut report);
        print_report(&report);
        verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
            ConcurrentSim::new(c, full, variant.options())
                .run(patterns)
                .statuses
        })?;
        if let Some(path) = &par.detections {
            write_detections(path, &report.statuses)?;
        }
        if let Some(path) = &par.baseline_out {
            write_baseline(path, "stuck", "uncollapsed", c, patterns, &report.statuses)?;
        }
    }
    if tel.stats || snaps.len() > 1 {
        println!();
        print!("{}", render_summary_table(&snaps));
    }
    close_jsonl(jsonl, &tel.stats_json)
}

/// The `--trace-out` path: every shard carries a metrics probe *and* an
/// event recorder ([`TraceProbe`]), for any thread count — one shard runs
/// the exact serial schedule, so the serial and sharded traced paths are
/// the same code. After the run the shard event streams become one Chrome
/// Trace / Perfetto JSON document (fault ids remapped to the global
/// universe through each shard's map).
#[allow(clippy::too_many_arguments)]
fn run_csim_stuck_traced(
    c: &Circuit,
    faults: &[StuckAt],
    patterns: &[Vec<Logic>],
    variant: CsimVariant,
    tel: &TelemetryOpts,
    par: &ParallelOpts,
    exp: Expansion<'_, StuckAt>,
    keys: Option<&[u32]>,
) -> Result<(), Box<dyn std::error::Error>> {
    // One epoch for every shard, so cross-track timestamps line up.
    let epoch = Instant::now();
    let mut sim = ParallelSim::with_probes_sharded(
        c,
        faults,
        stuck_options(variant, par),
        par.threads,
        par.shards(),
        par.plan,
        keys,
        |_| -> TraceProbe {
            PairProbe(SimMetrics::new(), TraceRecorder::new(epoch, tel.trace_cfg))
        },
    );
    if par.paranoid {
        sim.set_paranoid(true);
    }
    let mut progress = ProgressState::default();
    let after = |s: &ParallelSim<TraceProbe>, done: usize| {
        if let Some(every) = tel.trace_every {
            let shards: Vec<&SimMetrics> = s.shard_probes().map(|(p, _)| &p.0).collect();
            merged_trace_progress(&shards, &mut progress, every, done, faults.len());
        }
    };
    // Scheduler timestamps count from run start; measure that start on
    // the recorders' epoch so the worker tracks line up with the shards.
    let sched_offset = epoch.elapsed().as_micros() as u64;
    let mut report = match &par.batch {
        Some(b) => sim.run_batched_with(patterns, b, after),
        None => sim.run_with(patterns, after),
    };
    exp.expand(&mut report);
    print_report(&report);
    verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
        ConcurrentSim::new(c, full, variant.options())
            .run(patterns)
            .statuses
    })?;
    // Merge the metrics halves into one snapshot, exactly as
    // `ParallelSim::snapshot` does for plain instrumented shards.
    let mut merged: Option<MetricsSnapshot> = None;
    for (p, _) in sim.shard_probes() {
        let shard_snap = p.0.snapshot("", c.name());
        match merged.as_mut() {
            None => merged = Some(shard_snap),
            Some(m) => m.merge_shard(&shard_snap),
        }
    }
    let mut snap = merged.unwrap_or_default();
    snap.simulator = report.simulator.clone();
    snap.circuit = c.name().to_owned();
    let (good_events, good_evals) = sim.good_engine_work();
    snap.events += good_events;
    snap.good_evals += good_evals;
    snap.cpu_seconds = report.cpu.as_secs_f64();
    snap.phases.add(Phase::Check, tel.check_time);
    exp.stamp(&mut snap);
    snap.trace_events = sim.shard_probes().map(|(p, _)| p.1.recorded_events()).sum();
    snap.trace_dropped = sim.shard_probes().map(|(p, _)| p.1.dropped_events()).sum();
    if let Some(st) = sim.sched_stats() {
        snap.windows = st.windows as u64;
        snap.steals = st.steals;
    }
    if tel.stats {
        print_sched_line(par, sim.sched_stats(), sim.num_shards());
        print_stats_detail_sharded(&snap, sim.shard_probes().map(|(p, _)| &p.0));
        println!();
        print!("{}", render_summary_table(std::slice::from_ref(&snap)));
    }
    let mut jsonl = open_jsonl(&tel.stats_json)?;
    if let Some(w) = jsonl.as_mut() {
        if par.threads == 1 && par.batch.is_none() {
            // The single shard ran the serial schedule, so its per-pattern
            // records are the serial records.
            let (p, _) = sim.shard_probes().next().expect("one shard");
            emit_jsonl(w, &p.0, &snap)?;
        } else {
            w.write_summary(&snap)
                .map_err(|e| err(format!("cannot write telemetry: {e}")))?;
        }
    }
    close_jsonl(jsonl, &tel.stats_json)?;
    if let Some(path) = &par.detections {
        write_detections(path, &report.statuses)?;
    }
    if let Some(path) = &par.baseline_out {
        write_baseline(path, "stuck", "uncollapsed", c, patterns, &report.statuses)?;
    }
    let shard_data: Vec<(Vec<TraceEvent>, &[usize])> = sim
        .shard_probes()
        .map(|(p, map)| (p.1.events().copied().collect(), map))
        .collect();
    // Worker tracks only for batched runs: the plain sharded document
    // keeps its historical one-track-per-shard shape.
    let sched = par
        .batch
        .as_ref()
        .and_then(|_| sched_track_of(sim.sched_stats(), sched_offset));
    let path = tel
        .trace_out
        .as_deref()
        .expect("routed here by --trace-out");
    write_trace_file(
        path,
        &format!("{} · {}", c.name(), report.simulator),
        &shard_data,
        sched.as_ref(),
        snap.trace_events,
        snap.trace_dropped,
    )
}

/// Telemetry output for the baseline simulators, which report only run
/// totals: a headline-only snapshot through the same table and JSON path.
fn emit_basic_telemetry(
    tel: &TelemetryOpts,
    report: &FaultSimReport,
) -> Result<(), Box<dyn std::error::Error>> {
    if !tel.enabled() {
        return Ok(());
    }
    if tel.trace_every.is_some() {
        eprintln!("fsim: note: --trace-every needs a concurrent simulator; ignored");
    }
    let snap = MetricsSnapshot::from_basic(
        &report.simulator,
        &report.circuit,
        report.patterns as u64,
        report.detected() as u64,
        report.events,
        report.evaluations,
        report.memory_bytes as u64,
        report.cpu.as_secs_f64(),
    );
    if tel.stats {
        println!();
        print!("{}", render_summary_table(std::slice::from_ref(&snap)));
    }
    if let Some(path) = &tel.stats_json {
        let mut jsonl = open_jsonl(&tel.stats_json)?;
        if let Some(w) = jsonl.as_mut() {
            w.write_summary(&snap)
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        close_jsonl(jsonl, &tel.stats_json)?;
    }
    Ok(())
}

/// Prints what a `--prune` run is about to simulate.
fn print_prune_banner(model: &str, stats: &cfs_faults::PruneStats) {
    let conflict = if stats.conflict > 0 {
        format!(", {} conflict-untestable", stats.conflict)
    } else {
        String::new()
    };
    println!(
        "pruned {} of {} {model} faults ({} unexcitable, {} unobservable{conflict}); \
         simulating {} class representatives",
        stats.pruned(),
        stats.full,
        stats.unexcitable,
        stats.unobservable,
        stats.sim
    );
}

fn cmd_sim(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("sim", args, SIM_FLAGS)?;
    let spec = args.first().ok_or_else(|| err("sim: missing circuit"))?;
    let simulator = flag_value(args, "--simulator").unwrap_or("csim");
    let prune = has_flag(args, "--prune");
    let learn = learn_opts("sim", args)?;
    if learn.is_some() && !prune {
        return Err(err("--learn extends --prune; add --prune"));
    }
    let incremental = has_flag(args, "--incremental");
    if prune && has_flag(args, "--uncollapsed") {
        return Err(err(
            "--prune already reports the full uncollapsed universe (pruned faults \
             as untestable); drop --uncollapsed",
        ));
    }
    if prune && simulator != "csim" {
        return Err(err(format!(
            "--prune needs the concurrent simulator, not {simulator:?}"
        )));
    }
    if incremental && prune {
        return Err(err(
            "--incremental and --prune both rewrite the simulated universe; pick one",
        ));
    }
    if incremental && has_flag(args, "--uncollapsed") {
        return Err(err(
            "--incremental already reports the full uncollapsed universe; drop --uncollapsed",
        ));
    }
    if incremental && simulator != "csim" {
        return Err(err(format!(
            "--incremental needs the concurrent simulator, not {simulator:?}"
        )));
    }
    if incremental && flag_value(args, "--baseline-report").is_none() {
        return Err(err("--incremental needs --baseline-report FILE"));
    }
    if !incremental && flag_value(args, "--baseline-report").is_some() {
        return Err(err("--baseline-report needs --incremental"));
    }
    if flag_value(args, "--baseline-out").is_some()
        && !(prune || incremental || has_flag(args, "--uncollapsed"))
    {
        return Err(err(
            "--baseline-out records fates over the full uncollapsed universe; add \
             --uncollapsed (or --prune / --incremental, which already report it)",
        ));
    }
    let (c, check_time) = load_circuit_checked(spec, args)?;
    let mut tel = TelemetryOpts::parse(args)?;
    tel.check_time = check_time;
    let par = ParallelOpts::parse(args)?;
    let ck = CheckpointOpts::parse(args, &par, &tel)?;
    if ck.active() && simulator != "csim" {
        return Err(err(format!(
            "checkpointing needs the concurrent simulator, not {simulator:?}"
        )));
    }
    let patterns = load_patterns(&c, args, 256)?;
    // The weight-aware plan and --prune share one static analysis pass.
    let needs_analysis = prune || (par.plan == ShardPlan::WeightAware && par.threads > 1);
    let analysis = needs_analysis.then(|| analyze_circuit(&c));
    let pruned: Option<PrunedUniverse<StuckAt>> = match &analysis {
        Some(a) if prune => Some(match learn {
            Some(options) => {
                let graph = ImplicationGraph::build(&c, a, options);
                prune_stuck_at_learned(&c, a, &graph).universe
            }
            None => prune_stuck_at(&c, a),
        }),
        _ => None,
    };
    let incr: Option<(ImpactUniverse<StuckAt>, Vec<FaultStatus>)> =
        match flag_value(args, "--baseline-report") {
            Some(path) if incremental => {
                let baseline = load_baseline(path, "stuck", "uncollapsed")?;
                Some(prepare_incremental(
                    &c,
                    baseline,
                    &patterns,
                    classify_stuck_at,
                )?)
            }
            _ => None,
        };
    let faults = match (&pruned, &incr) {
        (Some(u), _) => {
            print_prune_banner("stuck-at", &u.stats);
            u.sim.clone()
        }
        (None, Some((u, _))) => {
            print_impact_banner("stuck-at", &u.stats);
            u.affected.clone()
        }
        (None, None) if has_flag(args, "--uncollapsed") => enumerate_stuck_at(&c),
        (None, None) => collapse_stuck_at(&c).representatives,
    };
    let keys: Option<Vec<u32>> = match &analysis {
        Some(a) if par.plan == ShardPlan::WeightAware && par.threads > 1 => {
            Some(stuck_weights(&c, a, &faults))
        }
        _ => None,
    };
    let exp: Expansion<'_, StuckAt> = match (&pruned, &incr) {
        (Some(u), _) => Expansion::Pruned(u),
        (None, Some((u, baseline))) => Expansion::Incremental {
            universe: u,
            baseline,
        },
        _ => Expansion::Verbatim,
    };
    let variant_name = flag_value(args, "--variant").unwrap_or("mv");
    let report = match simulator {
        "csim" => {
            return run_csim_stuck(
                &c,
                &faults,
                &patterns,
                variant_name,
                &tel,
                &par,
                &ck,
                exp,
                keys.as_deref(),
            )
        }
        other if tel.trace_out.is_some() => {
            return Err(err(format!(
                "--trace-out needs the concurrent simulator, not {other:?}"
            )))
        }
        other if par.threads > 1 => {
            return Err(err(format!(
                "--threads needs the concurrent simulator, not {other:?}"
            )))
        }
        other if par.batch.is_some() => {
            return Err(err(format!(
                "--batch-windows needs the concurrent simulator, not {other:?}"
            )))
        }
        other if par.paranoid => {
            return Err(err(format!(
                "--paranoid needs the concurrent simulator, not {other:?}"
            )))
        }
        other if par.quiesce_window > 0 => {
            return Err(err(format!(
                "--quiesce-window needs the concurrent simulator, not {other:?}"
            )))
        }
        "proofs" => ProofsSim::new(&c, &faults).run(&patterns),
        "serial" => SerialSim::new(&c, &faults).run(&patterns),
        "deductive" => {
            let reset = vec![Logic::Zero; c.num_dffs()];
            DeductiveSim::new(&c, &faults, reset).run(&patterns)?
        }
        other => return Err(err(format!("unknown simulator {other:?}"))),
    };
    print_report(&report);
    if let Some(path) = &par.detections {
        write_detections(path, &report.statuses)?;
    }
    if let Some(path) = &par.baseline_out {
        write_baseline(
            path,
            "stuck",
            "uncollapsed",
            &c,
            &patterns,
            &report.statuses,
        )?;
    }
    emit_basic_telemetry(&tel, &report)
}

fn run_transition_instrumented(
    sim: &mut TransitionSim<SimMetrics>,
    circuit: &str,
    patterns: &[Vec<Logic>],
    trace_every: Option<usize>,
    total_faults: usize,
) -> FaultSimReport {
    let start = Instant::now();
    for (i, p) in patterns.iter().enumerate() {
        sim.step(p);
        if trace_every.is_some_and(|n| (i + 1) % n == 0) {
            trace_progress(sim.metrics(), i + 1, sim.detected(), total_faults);
        }
    }
    let cpu = start.elapsed();
    FaultSimReport {
        simulator: "csim-T".to_owned(),
        circuit: circuit.to_owned(),
        patterns: patterns.len(),
        statuses: sim.statuses(),
        cpu,
        memory_bytes: sim.memory_bytes(),
        events: sim.events(),
        evaluations: sim.fault_evaluations(),
    }
}

fn cmd_transition(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("transition", args, TRANSITION_FLAGS)?;
    let spec = args
        .first()
        .ok_or_else(|| err("transition: missing circuit"))?;
    let (c, check_time) = load_circuit_checked(spec, args)?;
    let mut tel = TelemetryOpts::parse(args)?;
    tel.check_time = check_time;
    let par = ParallelOpts::parse(args)?;
    let ck = CheckpointOpts::parse(args, &par, &tel)?;
    let prune = has_flag(args, "--prune");
    let learn = learn_opts("transition", args)?;
    if learn.is_some() && !prune {
        return Err(err("--learn extends --prune; add --prune"));
    }
    let incremental = has_flag(args, "--incremental");
    if incremental && prune {
        return Err(err(
            "--incremental and --prune both rewrite the simulated universe; pick one",
        ));
    }
    if incremental && flag_value(args, "--baseline-report").is_none() {
        return Err(err("--incremental needs --baseline-report FILE"));
    }
    if !incremental && flag_value(args, "--baseline-report").is_some() {
        return Err(err("--baseline-report needs --incremental"));
    }
    let patterns = load_patterns(&c, args, 256)?;
    let needs_analysis = prune || (par.plan == ShardPlan::WeightAware && par.threads > 1);
    let analysis = needs_analysis.then(|| analyze_circuit(&c));
    let pruned: Option<PrunedUniverse<TransitionFault>> = match &analysis {
        Some(a) if prune => Some(match learn {
            Some(options) => {
                let graph = ImplicationGraph::build(&c, a, options);
                prune_transition_learned(&c, a, &graph)
            }
            None => prune_transition(&c, a),
        }),
        _ => None,
    };
    let incr: Option<(ImpactUniverse<TransitionFault>, Vec<FaultStatus>)> =
        match flag_value(args, "--baseline-report") {
            Some(path) if incremental => {
                let baseline = load_baseline(path, "transition", "full")?;
                Some(prepare_incremental(
                    &c,
                    baseline,
                    &patterns,
                    classify_transition,
                )?)
            }
            _ => None,
        };
    let faults = match (&pruned, &incr) {
        (Some(u), _) => {
            print_prune_banner("transition", &u.stats);
            u.sim.clone()
        }
        (None, Some((u, _))) => {
            print_impact_banner("transition", &u.stats);
            u.affected.clone()
        }
        (None, None) => enumerate_transition(&c),
    };
    let keys: Option<Vec<u32>> = match &analysis {
        Some(a) if par.plan == ShardPlan::WeightAware && par.threads > 1 => {
            Some(transition_weights(&c, a, &faults))
        }
        _ => None,
    };
    let exp: Expansion<'_, TransitionFault> = match (&pruned, &incr) {
        (Some(u), _) => Expansion::Pruned(u),
        (None, Some((u, baseline))) => Expansion::Incremental {
            universe: u,
            baseline,
        },
        _ => Expansion::Verbatim,
    };
    if ck.active() {
        return run_transition_checkpointed(&c, &faults, &patterns, &tel, &par, &ck, exp);
    }
    if tel.trace_out.is_some() {
        return run_transition_traced(&c, &faults, &patterns, &tel, &par, exp, keys.as_deref());
    }
    if par.threads > 1 || par.batch.is_some() {
        return run_transition_sharded(&c, &faults, &patterns, &tel, &par, exp, keys.as_deref());
    }
    if !tel.enabled() {
        let mut sim = TransitionSim::new(&c, &faults, transition_options(&par));
        if par.paranoid {
            sim.set_paranoid(true);
        }
        let mut report = sim.run(&patterns);
        exp.expand(&mut report);
        print_report(&report);
        verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
            TransitionSim::new(&c, full, TransitionOptions::default())
                .run(&patterns)
                .statuses
        })?;
        if let Some(path) = &par.detections {
            write_detections(path, &report.statuses)?;
        }
        if let Some(path) = &par.baseline_out {
            write_baseline(path, "transition", "full", &c, &patterns, &report.statuses)?;
        }
        return Ok(());
    }
    let mut jsonl = open_jsonl(&tel.stats_json)?;
    let mut sim = TransitionSim::instrumented(&c, &faults, transition_options(&par));
    if par.paranoid {
        sim.set_paranoid(true);
    }
    let mut report =
        run_transition_instrumented(&mut sim, c.name(), &patterns, tel.trace_every, faults.len());
    exp.expand(&mut report);
    print_report(&report);
    verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
        TransitionSim::new(&c, full, TransitionOptions::default())
            .run(&patterns)
            .statuses
    })?;
    let mut snap = sim.snapshot();
    snap.cpu_seconds = report.cpu.as_secs_f64();
    snap.phases.add(Phase::Check, tel.check_time);
    exp.stamp(&mut snap);
    if tel.stats {
        print_stats_detail(&snap, sim.metrics());
        println!();
        print!("{}", render_summary_table(std::slice::from_ref(&snap)));
    }
    if let Some(w) = jsonl.as_mut() {
        emit_jsonl(w, sim.metrics(), &snap)?;
    }
    if let Some(path) = &par.detections {
        write_detections(path, &report.statuses)?;
    }
    if let Some(path) = &par.baseline_out {
        write_baseline(path, "transition", "full", &c, &patterns, &report.statuses)?;
    }
    close_jsonl(jsonl, &tel.stats_json)
}

/// The `transition --checkpoint-every` / `--resume-from` path; mirrors
/// [`run_csim_stuck_checkpointed`].
fn run_transition_checkpointed(
    c: &Circuit,
    faults: &[TransitionFault],
    patterns: &[Vec<Logic>],
    tel: &TelemetryOpts,
    par: &ParallelOpts,
    ck: &CheckpointOpts,
    exp: Expansion<'_, TransitionFault>,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = TransitionSim::instrumented(c, faults, transition_options(par));
    if par.paranoid {
        sim.set_paranoid(true);
    }
    let start_at = match &ck.resume {
        Some(path) => {
            let snap = load_checkpoint_file(path)?;
            sim.restore(&snap)
                .map_err(|e| diag(format!("error: K002 [checkpoint-mismatch] {path}: {e}")))?;
            let done = snap.pattern_index() as usize;
            if done > patterns.len() {
                return Err(err(format!(
                    "{path} already covers {done} pattern(s) but this run replays only {}",
                    patterns.len()
                )));
            }
            println!("resumed from {path} at pattern {done}");
            done
        }
        None => 0,
    };
    let mut ckpt_time = Duration::ZERO;
    let mut written = 0u32;
    let start = Instant::now();
    for (i, p) in patterns.iter().enumerate().skip(start_at) {
        sim.step(p);
        if tel.trace_every.is_some_and(|n| (i + 1) % n == 0) {
            trace_progress(sim.metrics(), i + 1, sim.detected(), faults.len());
        }
        if let (Some(every), Some(dir)) = (ck.every, ck.out.as_deref()) {
            if (i + 1) % every == 0 && i + 1 < patterns.len() {
                let t = Instant::now();
                let snapshot = sim.checkpoint();
                write_checkpoint_file(dir, &snapshot)?;
                ckpt_time += t.elapsed();
                written += 1;
            }
        }
    }
    let cpu = start.elapsed();
    let mut report = FaultSimReport {
        simulator: "csim-T".to_owned(),
        circuit: c.name().to_owned(),
        patterns: patterns.len(),
        statuses: sim.statuses(),
        cpu,
        memory_bytes: sim.memory_bytes(),
        events: sim.events(),
        evaluations: sim.fault_evaluations(),
    };
    if let Some(dir) = ck.out.as_deref() {
        if written > 0 {
            println!(
                "wrote {written} checkpoint(s) to {dir} ({:.1} ms)",
                ckpt_time.as_secs_f64() * 1e3
            );
        }
    }
    exp.expand(&mut report);
    print_report(&report);
    verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
        TransitionSim::new(c, full, TransitionOptions::default())
            .run(patterns)
            .statuses
    })?;
    if tel.enabled() {
        let mut snap = sim.snapshot();
        snap.cpu_seconds = report.cpu.as_secs_f64();
        snap.phases.add(Phase::Check, tel.check_time);
        snap.phases.add(Phase::Checkpoint, ckpt_time);
        exp.stamp(&mut snap);
        if tel.stats {
            print_stats_detail(&snap, sim.metrics());
            println!();
            print!("{}", render_summary_table(std::slice::from_ref(&snap)));
        }
        let mut jsonl = open_jsonl(&tel.stats_json)?;
        if let Some(w) = jsonl.as_mut() {
            emit_jsonl(w, sim.metrics(), &snap)?;
        }
        close_jsonl(jsonl, &tel.stats_json)?;
    }
    if let Some(path) = &par.detections {
        write_detections(path, &report.statuses)?;
    }
    if let Some(path) = &par.baseline_out {
        write_baseline(path, "transition", "full", c, patterns, &report.statuses)?;
    }
    Ok(())
}

/// The `transition --threads N > 1` path; mirrors
/// [`run_csim_stuck_sharded`].
#[allow(clippy::too_many_arguments)]
fn run_transition_sharded(
    c: &Circuit,
    faults: &[TransitionFault],
    patterns: &[Vec<Logic>],
    tel: &TelemetryOpts,
    par: &ParallelOpts,
    exp: Expansion<'_, TransitionFault>,
    keys: Option<&[u32]>,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut report = if tel.enabled() {
        let mut jsonl = open_jsonl(&tel.stats_json)?;
        let mut sim = ParallelTransitionSim::with_probes_sharded(
            c,
            faults,
            transition_options(par),
            par.threads,
            par.shards(),
            par.plan,
            keys,
            |_| SimMetrics::new(),
        );
        if par.paranoid {
            sim.set_paranoid(true);
        }
        let mut progress = ProgressState::default();
        let after = |s: &ParallelTransitionSim<SimMetrics>, done: usize| {
            if let Some(every) = tel.trace_every {
                let shards: Vec<&SimMetrics> = s.shard_metrics().collect();
                merged_trace_progress(&shards, &mut progress, every, done, faults.len());
            }
        };
        let report = match &par.batch {
            Some(b) => sim.run_batched_with(patterns, b, after),
            None => sim.run_with(patterns, after),
        };
        let mut snap = sim.snapshot();
        snap.cpu_seconds = report.cpu.as_secs_f64();
        snap.phases.add(Phase::Check, tel.check_time);
        exp.stamp(&mut snap);
        if tel.stats {
            print_sched_line(par, sim.sched_stats(), sim.num_shards());
            print_stats_detail_sharded(&snap, sim.shard_metrics());
            println!();
            print!("{}", render_summary_table(std::slice::from_ref(&snap)));
        }
        if let Some(w) = jsonl.as_mut() {
            w.write_summary(&snap)
                .map_err(|e| err(format!("cannot write telemetry: {e}")))?;
        }
        close_jsonl(jsonl, &tel.stats_json)?;
        report
    } else {
        let mut sim = ParallelTransitionSim::with_probes_sharded(
            c,
            faults,
            transition_options(par),
            par.threads,
            par.shards(),
            par.plan,
            keys,
            |_| NullProbe,
        );
        if par.paranoid {
            sim.set_paranoid(true);
        }
        match &par.batch {
            Some(b) => sim.run_batched(patterns, b),
            None => sim.run(patterns),
        }
    };
    exp.expand(&mut report);
    print_report(&report);
    verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
        TransitionSim::new(c, full, TransitionOptions::default())
            .run(patterns)
            .statuses
    })?;
    if let Some(path) = &par.detections {
        write_detections(path, &report.statuses)?;
    }
    if let Some(path) = &par.baseline_out {
        write_baseline(path, "transition", "full", c, patterns, &report.statuses)?;
    }
    Ok(())
}

/// The `transition --trace-out` path; mirrors [`run_csim_stuck_traced`].
fn run_transition_traced(
    c: &Circuit,
    faults: &[TransitionFault],
    patterns: &[Vec<Logic>],
    tel: &TelemetryOpts,
    par: &ParallelOpts,
    exp: Expansion<'_, TransitionFault>,
    keys: Option<&[u32]>,
) -> Result<(), Box<dyn std::error::Error>> {
    let epoch = Instant::now();
    let mut sim = ParallelTransitionSim::with_probes_sharded(
        c,
        faults,
        transition_options(par),
        par.threads,
        par.shards(),
        par.plan,
        keys,
        |_| -> TraceProbe {
            PairProbe(SimMetrics::new(), TraceRecorder::new(epoch, tel.trace_cfg))
        },
    );
    if par.paranoid {
        sim.set_paranoid(true);
    }
    let mut progress = ProgressState::default();
    let after = |s: &ParallelTransitionSim<TraceProbe>, done: usize| {
        if let Some(every) = tel.trace_every {
            let shards: Vec<&SimMetrics> = s.shard_probes().map(|(p, _)| &p.0).collect();
            merged_trace_progress(&shards, &mut progress, every, done, faults.len());
        }
    };
    let sched_offset = epoch.elapsed().as_micros() as u64;
    let mut report = match &par.batch {
        Some(b) => sim.run_batched_with(patterns, b, after),
        None => sim.run_with(patterns, after),
    };
    exp.expand(&mut report);
    print_report(&report);
    verify_incremental(c.name(), exp, par.paranoid, &report.statuses, |full| {
        TransitionSim::new(c, full, TransitionOptions::default())
            .run(patterns)
            .statuses
    })?;
    let mut merged: Option<MetricsSnapshot> = None;
    for (p, _) in sim.shard_probes() {
        let shard_snap = p.0.snapshot("", c.name());
        match merged.as_mut() {
            None => merged = Some(shard_snap),
            Some(m) => m.merge_shard(&shard_snap),
        }
    }
    let mut snap = merged.unwrap_or_default();
    snap.simulator = report.simulator.clone();
    snap.circuit = c.name().to_owned();
    let (good_events, good_evals) = sim.good_engine_work();
    snap.events += good_events;
    snap.good_evals += good_evals;
    snap.cpu_seconds = report.cpu.as_secs_f64();
    snap.phases.add(Phase::Check, tel.check_time);
    exp.stamp(&mut snap);
    snap.trace_events = sim.shard_probes().map(|(p, _)| p.1.recorded_events()).sum();
    snap.trace_dropped = sim.shard_probes().map(|(p, _)| p.1.dropped_events()).sum();
    if let Some(st) = sim.sched_stats() {
        snap.windows = st.windows as u64;
        snap.steals = st.steals;
    }
    if tel.stats {
        print_sched_line(par, sim.sched_stats(), sim.num_shards());
        print_stats_detail_sharded(&snap, sim.shard_probes().map(|(p, _)| &p.0));
        println!();
        print!("{}", render_summary_table(std::slice::from_ref(&snap)));
    }
    let mut jsonl = open_jsonl(&tel.stats_json)?;
    if let Some(w) = jsonl.as_mut() {
        if par.threads == 1 && par.batch.is_none() {
            let (p, _) = sim.shard_probes().next().expect("one shard");
            emit_jsonl(w, &p.0, &snap)?;
        } else {
            w.write_summary(&snap)
                .map_err(|e| err(format!("cannot write telemetry: {e}")))?;
        }
    }
    close_jsonl(jsonl, &tel.stats_json)?;
    if let Some(path) = &par.detections {
        write_detections(path, &report.statuses)?;
    }
    if let Some(path) = &par.baseline_out {
        write_baseline(path, "transition", "full", c, patterns, &report.statuses)?;
    }
    let shard_data: Vec<(Vec<TraceEvent>, &[usize])> = sim
        .shard_probes()
        .map(|(p, map)| (p.1.events().copied().collect(), map))
        .collect();
    let sched = par
        .batch
        .as_ref()
        .and_then(|_| sched_track_of(sim.sched_stats(), sched_offset));
    let path = tel
        .trace_out
        .as_deref()
        .expect("routed here by --trace-out");
    write_trace_file(
        path,
        &format!("{} · {}", c.name(), report.simulator),
        &shard_data,
        sched.as_ref(),
        snap.trace_events,
        snap.trace_dropped,
    )
}

/// Display name of a gate-level node. Gate-level networks keep node id ==
/// circuit gate index; `explain` and `heatmap` replay through `csim-V`
/// (split lists, no macros) for exactly this reason — macro collapsing
/// renumbers nodes.
fn node_name(c: &Circuit, node: u32) -> &str {
    c.gate(GateId::from_index(node as usize)).name()
}

/// `fsim explain <circuit> <fault-id>`: replay the fault universe through
/// a serial gate-level traced run and print the one fault's recorded
/// lifecycle. Unknown and statically-untestable ids exit with status 2
/// and a `cfs-check`-style diagnostic instead of a timeline.
fn cmd_explain(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let spec = args
        .first()
        .ok_or_else(|| err("explain: missing circuit"))?;
    let id_arg = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| err("explain: missing fault id (fsim explain <circuit> <fault-id>)"))?;
    if let Some(stray) = args.get(2).filter(|a| !a.starts_with("--")) {
        return Err(err(format!(
            "explain: unexpected argument {stray:?} (the circuit and fault id come first)"
        )));
    }
    validate_flags("explain", &args[2..], EXPLAIN_FLAGS)?;
    let id: usize = id_arg.parse().map_err(|_| {
        err(format!(
            "explain: fault id must be a number, got {id_arg:?}"
        ))
    })?;
    let (c, _check_time) = load_circuit_checked(spec, args)?;
    let uncollapsed = has_flag(args, "--uncollapsed");
    let universe = if uncollapsed {
        enumerate_stuck_at(&c)
    } else {
        collapse_stuck_at(&c).representatives
    };
    if id >= universe.len() {
        let kind = if uncollapsed {
            "uncollapsed"
        } else {
            "collapsed"
        };
        return Err(diag(format!(
            "error: E001 [unknown-fault-id] fault {id} is outside the {kind} stuck-at \
             universe of {} (valid ids: 0..{})",
            c.name(),
            universe.len()
        )));
    }
    let fault = universe[id];
    // A statically-untestable fault has no lifecycle to explain; say why
    // up front instead of replaying to an empty timeline.
    let analysis = analyze_circuit(&c);
    let pu = prune_stuck_at(&c, &analysis);
    if let Some(pos) = pu.full.iter().position(|&f| f == fault) {
        if let FaultFate::Pruned(reason) = pu.fate[pos] {
            let why = match reason {
                PruneReason::Unexcitable => {
                    "its site is provably constant at the stuck value, so it can never be excited"
                }
                PruneReason::Unobservable => "no primary output can ever observe its site",
                PruneReason::ConflictUntestable => {
                    "its mandatory assignments contradict under the implication closure"
                }
            };
            let code = match reason {
                PruneReason::ConflictUntestable => "F004 [conflict-untestable-fault]",
                _ => "F002 [statically-untestable-fault]",
            };
            return Err(diag(format!(
                "error: {code} fault {id} ({}): {why}; \
                 no pattern sequence can detect it",
                fault.describe(&c)
            )));
        }
    }
    let mut cfg = TraceConfig::default();
    if let Some(v) = flag_value(args, "--trace-window") {
        cfg.quiescence_window = v
            .parse()
            .map_err(|_| err("--trace-window needs a number (0 disables)"))?;
    }
    let patterns = load_patterns(&c, args, 256)?;
    let mut sim = ConcurrentSim::with_probe(
        &c,
        &universe,
        CsimVariant::V.options(),
        TraceRecorder::new(Instant::now(), cfg),
    );
    for p in &patterns {
        sim.step(p);
    }
    let rec = sim.probe();
    if rec.dropped_events() > 0 {
        eprintln!(
            "fsim: note: trace ring overflowed ({} events dropped); the timeline may be \
             missing early events (replay fewer patterns)",
            rec.dropped_events()
        );
    }
    let timeline = FaultTimeline::collect(rec.events(), id as u32);
    println!("fault {id}: {}", fault.describe(&c));
    println!(
        "  replayed {} patterns through csim-V (gate-level, serial)",
        patterns.len()
    );
    println!();
    const MAX_LINES: usize = 80;
    for e in timeline.events.iter().take(MAX_LINES) {
        match *e {
            TraceEvent::Divergence {
                pattern, node, ts, ..
            } => println!(
                "  pattern {pattern:>6}  +{ts:>9} µs  diverged at {}",
                node_name(&c, node)
            ),
            TraceEvent::Convergence {
                pattern, node, ts, ..
            } => println!(
                "  pattern {pattern:>6}  +{ts:>9} µs  converged at {}",
                node_name(&c, node)
            ),
            TraceEvent::Dropped {
                pattern, node, ts, ..
            } => println!(
                "  pattern {pattern:>6}  +{ts:>9} µs  dropped at {} (detected; element purged)",
                node_name(&c, node)
            ),
            TraceEvent::Detected {
                pattern,
                po_node,
                ts,
                ..
            } => println!(
                "  pattern {pattern:>6}  +{ts:>9} µs  DETECTED at output {}",
                node_name(&c, po_node)
            ),
            TraceEvent::Quiescent {
                since_pattern,
                at_pattern,
                ts,
                ..
            } => println!(
                "  pattern {at_pattern:>6}  +{ts:>9} µs  quiescent since pattern {since_pattern}"
            ),
            _ => {}
        }
    }
    if timeline.events.len() > MAX_LINES {
        println!("  … {} more events", timeline.events.len() - MAX_LINES);
    }
    println!();
    let (div, conv) = timeline.activity_counts();
    if timeline.is_empty() {
        println!(
            "verdict: never excited in {} patterns (no fault effect entered any list)",
            patterns.len()
        );
    } else if let Some((pattern, po, _)) = timeline.detection() {
        println!(
            "verdict: detected at pattern {pattern} at output {} \
             ({div} divergences, {conv} convergences)",
            node_name(&c, po)
        );
    } else {
        match timeline.first_excitation() {
            Some((p0, n0, _)) => println!(
                "verdict: excited but never detected ({div} divergences, {conv} convergences; \
                 first recorded excitation at pattern {p0} at {})",
                node_name(&c, n0)
            ),
            None => println!(
                "verdict: active but never detected \
                 ({div} divergences, {conv} convergences recorded)"
            ),
        }
    }
    Ok(())
}

/// `fsim heatmap <circuit>`: rank nodes by recorded fault-list activity
/// from a serial gate-level traced run — the measured counterpart of the
/// static SCOAP observability weights `--shard-plan weight-aware` uses.
fn cmd_heatmap(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("heatmap", args, HEATMAP_FLAGS)?;
    let spec = args
        .first()
        .ok_or_else(|| err("heatmap: missing circuit"))?;
    let format = flag_value(args, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(err(format!("unknown format {format:?} (text, json)")));
    }
    let top = match flag_value(args, "--top") {
        Some(v) => {
            let n: usize = v.parse().map_err(|_| err("--top needs a number"))?;
            if n == 0 {
                return Err(err("--top must be at least 1"));
            }
            n
        }
        None => 20,
    };
    let (c, _check_time) = load_circuit_checked(spec, args)?;
    let faults = if has_flag(args, "--uncollapsed") {
        enumerate_stuck_at(&c)
    } else {
        collapse_stuck_at(&c).representatives
    };
    let patterns = load_patterns(&c, args, 256)?;
    // The per-node totals come from the recorder's exact counters, which
    // ring overflow cannot touch, so the ring itself can be minimal.
    let cfg = TraceConfig {
        capacity: 1,
        quiescence_window: 0,
    };
    let mut sim = ConcurrentSim::with_probe(
        &c,
        &faults,
        CsimVariant::V.options(),
        TraceRecorder::new(Instant::now(), cfg),
    );
    for p in &patterns {
        sim.step(p);
    }
    let mut heat = Heatmap::new();
    heat.add_recorder(sim.probe());
    let ranked = heat.ranked();
    let shown = ranked.len().min(top);
    if format == "json" {
        let mut out = String::new();
        out.push_str("{\"circuit\":");
        write_json_string(&mut out, c.name());
        out.push_str(&format!(
            ",\"patterns\":{},\"faults\":{},\"active_nodes\":{},\"total_activity\":{},\"nodes\":[",
            patterns.len(),
            faults.len(),
            ranked.len(),
            heat.total()
        ));
        for (i, (node, act)) in ranked.iter().take(top).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"node\":{node},\"name\":"));
            write_json_string(&mut out, node_name(&c, *node));
            out.push_str(&format!(
                ",\"level\":{},\"divergences\":{},\"convergences\":{},\"drops\":{},\"total\":{}}}",
                c.level(GateId::from_index(*node as usize)),
                act.divergences,
                act.convergences,
                act.drops,
                act.total()
            ));
        }
        out.push_str("]}");
        println!("{out}");
        return Ok(());
    }
    println!(
        "fault-list activity of {} ({} patterns, {} faults, {} events at {} active nodes)",
        c.name(),
        patterns.len(),
        faults.len(),
        heat.total(),
        ranked.len()
    );
    println!(
        "  {:<24} {:>5} {:>10} {:>10} {:>8} {:>10}",
        "node", "level", "diverge", "converge", "drops", "total"
    );
    for (node, act) in ranked.iter().take(top) {
        println!(
            "  {:<24} {:>5} {:>10} {:>10} {:>8} {:>10}",
            node_name(&c, *node),
            c.level(GateId::from_index(*node as usize)),
            act.divergences,
            act.convergences,
            act.drops,
            act.total()
        );
    }
    if ranked.len() > shown {
        println!(
            "  … {} more active node(s) (raise --top)",
            ranked.len() - shown
        );
    }
    Ok(())
}

fn cmd_atpg(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("atpg", args, ATPG_FLAGS)?;
    let spec = args.first().ok_or_else(|| err("atpg: missing circuit"))?;
    let c = load_circuit(spec)?;
    let faults = collapse_stuck_at(&c).representatives;
    let options = AtpgOptions {
        max_frames: match flag_value(args, "--max-frames") {
            Some(v) => v.parse().map_err(|_| err("--max-frames needs a number"))?,
            None => 8,
        },
        random_patterns: match flag_value(args, "--random") {
            Some(v) => v.parse().map_err(|_| err("--random needs a number"))?,
            None => 128,
        },
        ..Default::default()
    };
    let outcome = generate_tests(&c, &faults, options);
    println!("{outcome}");
    if let Some(path) = flag_value(args, "--out") {
        let mut text = String::new();
        for p in &outcome.patterns {
            text.push_str(&format_pattern(p));
            text.push('\n');
        }
        fs::write(path, text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        println!("wrote {} patterns to {path}", outcome.patterns.len());
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_flags("generate", args, GENERATE_FLAGS)?;
    let name = args.first().ok_or_else(|| err("generate: missing name"))?;
    let c = cfs_netlist::generate::benchmark(name)
        .ok_or_else(|| err(format!("unknown benchmark {name:?}")))?;
    let text = write_bench(&c);
    match flag_value(args, "--out") {
        Some(path) => {
            fs::write(path, text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
            println!("wrote {c} to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}
