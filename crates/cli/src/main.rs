//! `fsim` — command-line concurrent fault simulation for synchronous
//! sequential circuits (Lee & Reddy, DAC 1992).
//!
//! ```text
//! fsim stats <circuit>
//! fsim sim <circuit> [--random N | --patterns FILE] [--variant base|v|m|mv]
//!                    [--simulator csim|proofs|serial|deductive] [--uncollapsed]
//! fsim transition <circuit> [--random N | --patterns FILE]
//! fsim atpg <circuit> [--max-frames K] [--random N] [--out FILE]
//! fsim generate <name> [--out FILE]
//! ```
//!
//! `<circuit>` is a `.bench` file path, or `@name` for a built-in circuit
//! (`@s27` or a generated benchmark such as `@s298g`).

use std::fmt;
use std::fs;
use std::process::ExitCode;

use cfs_atpg::{generate_tests, random_patterns, AtpgOptions};
use cfs_baselines::{DeductiveSim, ProofsSim, SerialSim};
use cfs_core::{ConcurrentSim, CsimVariant, TransitionOptions, TransitionSim};
use cfs_faults::{collapse_stuck_at, enumerate_stuck_at, enumerate_transition, FaultSimReport};
use cfs_logic::{format_pattern, parse_pattern, Logic};
use cfs_netlist::{extract_macros, parse_bench, write_bench, Circuit};

#[derive(Debug)]
struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> Box<dyn std::error::Error> {
    Box::new(CliError(msg.into()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fsim: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match command.as_str() {
        "stats" => cmd_stats(rest),
        "sim" => cmd_sim(rest),
        "transition" => cmd_transition(rest),
        "atpg" => cmd_atpg(rest),
        "generate" => cmd_generate(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(err(format!("unknown command {other:?} (try --help)"))),
    }
}

fn print_usage() {
    eprintln!(
        "fsim — concurrent fault simulation for synchronous sequential circuits\n\
         \n\
         usage:\n\
         \u{20}  fsim stats <circuit>\n\
         \u{20}  fsim sim <circuit> [--random N | --patterns FILE] [--variant base|v|m|mv]\n\
         \u{20}                     [--simulator csim|proofs|serial|deductive] [--uncollapsed]\n\
         \u{20}  fsim transition <circuit> [--random N | --patterns FILE]\n\
         \u{20}  fsim atpg <circuit> [--max-frames K] [--random N] [--out FILE]\n\
         \u{20}  fsim generate <name> [--out FILE]\n\
         \n\
         <circuit>: a .bench file, or @name for a built-in (@s27, @s298g, …)"
    );
}

/// Simple flag scanner: returns the value following `flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_circuit(spec: &str) -> Result<Circuit, Box<dyn std::error::Error>> {
    if let Some(name) = spec.strip_prefix('@') {
        if name == "s27" {
            return Ok(cfs_netlist::data::s27());
        }
        return cfs_netlist::generate::benchmark(name)
            .ok_or_else(|| err(format!("unknown built-in circuit {name:?}")));
    }
    let text = fs::read_to_string(spec).map_err(|e| err(format!("cannot read {spec}: {e}")))?;
    let name = std::path::Path::new(spec)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    Ok(parse_bench(name, &text)?)
}

fn load_patterns(
    circuit: &Circuit,
    args: &[String],
    default_random: usize,
) -> Result<Vec<Vec<Logic>>, Box<dyn std::error::Error>> {
    if let Some(file) = flag_value(args, "--patterns") {
        let text = fs::read_to_string(file).map_err(|e| err(format!("cannot read {file}: {e}")))?;
        let mut patterns = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let p = parse_pattern(line).map_err(|e| err(format!("{file}:{}: {e}", lineno + 1)))?;
            if p.len() != circuit.num_inputs() {
                return Err(err(format!(
                    "{file}:{}: pattern has {} bits, circuit has {} inputs",
                    lineno + 1,
                    p.len(),
                    circuit.num_inputs()
                )));
            }
            patterns.push(p);
        }
        return Ok(patterns);
    }
    let n = match flag_value(args, "--random") {
        Some(v) => v.parse().map_err(|_| err("--random needs a number"))?,
        None => default_random,
    };
    let seed = match flag_value(args, "--seed") {
        Some(v) => v.parse().map_err(|_| err("--seed needs a number"))?,
        None => 1,
    };
    Ok(random_patterns(circuit, n, seed))
}

fn cmd_stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let spec = args.first().ok_or_else(|| err("stats: missing circuit"))?;
    let c = load_circuit(spec)?;
    println!("{c}");
    let all = enumerate_stuck_at(&c);
    let collapsed = collapse_stuck_at(&c);
    println!(
        "stuck-at faults: {} ({} collapsed, ratio {:.2})",
        all.len(),
        collapsed.num_classes(),
        collapsed.ratio()
    );
    println!("transition faults: {}", enumerate_transition(&c).len());
    let macros = extract_macros(&c, cfs_netlist::DEFAULT_MACRO_MAX_INPUTS);
    println!(
        "macro cells: {} ({:.2} gates/cell, {} KiB of LUTs)",
        macros.num_cells(),
        c.num_comb_gates() as f64 / macros.num_cells() as f64,
        macros.lut_memory_bytes() / 1024
    );
    Ok(())
}

fn print_report(report: &FaultSimReport) {
    println!("{report}");
    println!(
        "  events: {}, faulty-machine evaluations: {}",
        report.events, report.evaluations
    );
}

fn cmd_sim(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let spec = args.first().ok_or_else(|| err("sim: missing circuit"))?;
    let c = load_circuit(spec)?;
    let faults = if has_flag(args, "--uncollapsed") {
        enumerate_stuck_at(&c)
    } else {
        collapse_stuck_at(&c).representatives
    };
    let patterns = load_patterns(&c, args, 256)?;
    let simulator = flag_value(args, "--simulator").unwrap_or("csim");
    let report = match simulator {
        "csim" => {
            let variant = match flag_value(args, "--variant").unwrap_or("mv") {
                "base" => CsimVariant::Base,
                "v" => CsimVariant::V,
                "m" => CsimVariant::M,
                "mv" => CsimVariant::Mv,
                other => return Err(err(format!("unknown variant {other:?}"))),
            };
            let mut sim = ConcurrentSim::new(&c, &faults, variant.options());
            sim.run(&patterns)
        }
        "proofs" => ProofsSim::new(&c, &faults).run(&patterns),
        "serial" => SerialSim::new(&c, &faults).run(&patterns),
        "deductive" => {
            let reset = vec![Logic::Zero; c.num_dffs()];
            DeductiveSim::new(&c, &faults, reset).run(&patterns)?
        }
        other => return Err(err(format!("unknown simulator {other:?}"))),
    };
    print_report(&report);
    Ok(())
}

fn cmd_transition(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let spec = args
        .first()
        .ok_or_else(|| err("transition: missing circuit"))?;
    let c = load_circuit(spec)?;
    let faults = enumerate_transition(&c);
    let patterns = load_patterns(&c, args, 256)?;
    let mut sim = TransitionSim::new(&c, &faults, TransitionOptions::default());
    let report = sim.run(&patterns);
    print_report(&report);
    Ok(())
}

fn cmd_atpg(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let spec = args.first().ok_or_else(|| err("atpg: missing circuit"))?;
    let c = load_circuit(spec)?;
    let faults = collapse_stuck_at(&c).representatives;
    let options = AtpgOptions {
        max_frames: match flag_value(args, "--max-frames") {
            Some(v) => v.parse().map_err(|_| err("--max-frames needs a number"))?,
            None => 8,
        },
        random_patterns: match flag_value(args, "--random") {
            Some(v) => v.parse().map_err(|_| err("--random needs a number"))?,
            None => 128,
        },
        ..Default::default()
    };
    let outcome = generate_tests(&c, &faults, options);
    println!("{outcome}");
    if let Some(path) = flag_value(args, "--out") {
        let mut text = String::new();
        for p in &outcome.patterns {
            text.push_str(&format_pattern(p));
            text.push('\n');
        }
        fs::write(path, text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        println!("wrote {} patterns to {path}", outcome.patterns.len());
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let name = args.first().ok_or_else(|| err("generate: missing name"))?;
    let c = cfs_netlist::generate::benchmark(name)
        .ok_or_else(|| err(format!("unknown benchmark {name:?}")))?;
    let text = write_bench(&c);
    match flag_value(args, "--out") {
        Some(path) => {
            fs::write(path, text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
            println!("wrote {c} to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}
