//! End-to-end tests of the `fsim` binary.

use std::process::Command;

fn fsim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fsim"))
        .args(args)
        .output()
        .expect("fsim binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, _, err) = fsim(&["--help"]);
    assert!(ok);
    assert!(err.contains("usage:"));
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let (ok, _, err) = fsim(&[]);
    assert!(ok);
    assert!(err.contains("fsim"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, err) = fsim(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn stats_builtin_s27() {
    let (ok, out, _) = fsim(&["stats", "@s27"]);
    assert!(ok);
    assert!(out.contains("s27"));
    assert!(out.contains("stuck-at faults"));
    assert!(out.contains("macro cells"));
}

#[test]
fn stats_unknown_builtin_fails() {
    let (ok, _, err) = fsim(&["stats", "@sNope"]);
    assert!(!ok);
    assert!(err.contains("unknown built-in"));
}

#[test]
fn sim_with_random_patterns() {
    let (ok, out, _) = fsim(&["sim", "@s27", "--random", "64", "--seed", "3"]);
    assert!(ok, "{out}");
    assert!(out.contains("csim-MV"));
    assert!(out.contains("faults"));
}

#[test]
fn sim_each_simulator_agrees_on_detections() {
    let detected = |sim: &str| -> String {
        let (ok, out, err) = fsim(&["sim", "@s27", "--random", "64", "--simulator", sim]);
        assert!(ok, "{sim}: {err}");
        // "x/y faults" fragment
        out.split_whitespace()
            .find(|w| w.contains('/'))
            .unwrap_or("")
            .to_owned()
    };
    let csim = detected("csim");
    let proofs = detected("proofs");
    let serial = detected("serial");
    assert_eq!(csim, proofs);
    assert_eq!(csim, serial);
}

#[test]
fn sim_from_bench_file_and_pattern_file() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("inv.bench");
    std::fs::write(&bench, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
    let pats = dir.join("p.pat");
    std::fs::write(&pats, "# comment\n0\n1\n").unwrap();
    let (ok, out, err) = fsim(&[
        "sim",
        bench.to_str().unwrap(),
        "--patterns",
        pats.to_str().unwrap(),
        "--uncollapsed",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("(100.00%)"), "all inverter faults found: {out}");
}

#[test]
fn pattern_width_mismatch_is_reported() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let pats = dir.join("bad.pat");
    std::fs::write(&pats, "0101010101\n").unwrap();
    let (ok, _, err) = fsim(&["sim", "@s27", "--patterns", pats.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("bits"), "{err}");
}

#[test]
fn transition_simulation_runs() {
    let (ok, out, _) = fsim(&["transition", "@s27", "--random", "64"]);
    assert!(ok);
    assert!(out.contains("csim-T"));
}

#[test]
fn generate_round_trips_through_sim() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("gen.bench");
    let (ok, _, err) = fsim(&["generate", "s298g", "--out", bench.to_str().unwrap()]);
    assert!(ok, "{err}");
    let (ok, out, err) = fsim(&["sim", bench.to_str().unwrap(), "--random", "32"]);
    assert!(ok, "{err}");
    assert!(out.contains("gen"), "{out}");
}

#[test]
fn atpg_writes_patterns() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("s27.pat");
    let (ok, out, err) = fsim(&[
        "atpg",
        "@s27",
        "--random",
        "16",
        "--max-frames",
        "3",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("coverage"));
    let text = std::fs::read_to_string(&out_file).unwrap();
    assert!(!text.trim().is_empty());
    // Patterns feed back into sim.
    let (ok, _, err) = fsim(&["sim", "@s27", "--patterns", out_file.to_str().unwrap()]);
    assert!(ok, "{err}");
}
