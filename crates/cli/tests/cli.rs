//! End-to-end tests of the `fsim` binary.

use std::process::Command;

use cfs_telemetry::JsonValue;

fn fsim(args: &[&str]) -> (bool, String, String) {
    let (code, out, err) = fsim_code(args);
    (code == Some(0), out, err)
}

/// Like [`fsim`], but reporting the raw exit code — diagnostics exit with 2.
fn fsim_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fsim"))
        .args(args)
        .output()
        .expect("fsim binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, _, err) = fsim(&["--help"]);
    assert!(ok);
    assert!(err.contains("usage:"));
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let (ok, _, err) = fsim(&[]);
    assert!(ok);
    assert!(err.contains("fsim"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, err) = fsim(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn stats_builtin_s27() {
    let (ok, out, _) = fsim(&["stats", "@s27"]);
    assert!(ok);
    assert!(out.contains("s27"));
    assert!(out.contains("stuck-at faults"));
    assert!(out.contains("macro cells"));
}

#[test]
fn stats_unknown_builtin_fails() {
    let (ok, _, err) = fsim(&["stats", "@sNope"]);
    assert!(!ok);
    assert!(err.contains("unknown built-in"));
}

#[test]
fn sim_with_random_patterns() {
    let (ok, out, _) = fsim(&["sim", "@s27", "--random", "64", "--seed", "3"]);
    assert!(ok, "{out}");
    assert!(out.contains("csim-MV"));
    assert!(out.contains("faults"));
}

#[test]
fn sim_each_simulator_agrees_on_detections() {
    let detected = |sim: &str| -> String {
        let (ok, out, err) = fsim(&["sim", "@s27", "--random", "64", "--simulator", sim]);
        assert!(ok, "{sim}: {err}");
        // "x/y faults" fragment
        out.split_whitespace()
            .find(|w| w.contains('/'))
            .unwrap_or("")
            .to_owned()
    };
    let csim = detected("csim");
    let proofs = detected("proofs");
    let serial = detected("serial");
    assert_eq!(csim, proofs);
    assert_eq!(csim, serial);
}

#[test]
fn sim_from_bench_file_and_pattern_file() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("inv.bench");
    std::fs::write(&bench, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
    let pats = dir.join("p.pat");
    std::fs::write(&pats, "# comment\n0\n1\n").unwrap();
    let (ok, out, err) = fsim(&[
        "sim",
        bench.to_str().unwrap(),
        "--patterns",
        pats.to_str().unwrap(),
        "--uncollapsed",
    ]);
    assert!(ok, "{err}");
    assert!(
        out.contains("(100.00%)"),
        "all inverter faults found: {out}"
    );
}

#[test]
fn pattern_width_mismatch_is_reported() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let pats = dir.join("bad.pat");
    std::fs::write(&pats, "0101010101\n").unwrap();
    let (ok, _, err) = fsim(&["sim", "@s27", "--patterns", pats.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("bits"), "{err}");
}

#[test]
fn transition_simulation_runs() {
    let (ok, out, _) = fsim(&["transition", "@s27", "--random", "64"]);
    assert!(ok);
    assert!(out.contains("csim-T"));
}

#[test]
fn generate_round_trips_through_sim() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("gen.bench");
    let (ok, _, err) = fsim(&["generate", "s298g", "--out", bench.to_str().unwrap()]);
    assert!(ok, "{err}");
    let (ok, out, err) = fsim(&["sim", bench.to_str().unwrap(), "--random", "32"]);
    assert!(ok, "{err}");
    assert!(out.contains("gen"), "{out}");
}

#[test]
fn atpg_writes_patterns() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("s27.pat");
    let (ok, out, err) = fsim(&[
        "atpg",
        "@s27",
        "--random",
        "16",
        "--max-frames",
        "3",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("coverage"));
    let text = std::fs::read_to_string(&out_file).unwrap();
    assert!(!text.trim().is_empty());
    // Patterns feed back into sim.
    let (ok, _, err) = fsim(&["sim", "@s27", "--patterns", out_file.to_str().unwrap()]);
    assert!(ok, "{err}");
}

#[test]
fn equals_form_flags_are_accepted() {
    let (ok, out, err) = fsim(&["sim", "@s27", "--random=16", "--seed=3", "--variant=base"]);
    assert!(ok, "{err}");
    assert!(out.contains("16 patterns"), "{out}");
    assert!(out.contains("csim on s27"), "{out}");
}

#[test]
fn unknown_flag_is_an_error() {
    let (ok, _, err) = fsim(&["sim", "@s27", "--frobnicate", "3"]);
    assert!(!ok);
    assert!(err.contains("unknown flag --frobnicate"), "{err}");
    let (ok, _, err) = fsim(&["transition", "@s27", "--uncollapsed"]);
    assert!(!ok);
    assert!(err.contains("unknown flag --uncollapsed"), "{err}");
}

#[test]
fn boolean_flag_rejects_a_value() {
    let (ok, _, err) = fsim(&["sim", "@s27", "--stats=yes"]);
    assert!(!ok);
    assert!(err.contains("does not take a value"), "{err}");
}

#[test]
fn value_flag_requires_a_value() {
    let (ok, _, err) = fsim(&["sim", "@s27", "--random"]);
    assert!(!ok);
    assert!(err.contains("needs a value"), "{err}");
}

#[test]
fn sim_stats_prints_metric_tables() {
    let (ok, out, err) = fsim(&["sim", "@s27", "--random", "16", "--stats"]);
    assert!(ok, "{err}");
    assert!(out.contains("avg |F|"), "{out}");
    assert!(out.contains("visible%"), "{out}");
    assert!(out.contains("propagate"), "{out}");
    assert!(out.contains("fault-list length per node"), "{out}");
    assert!(out.contains("event-queue depth per level"), "{out}");
}

#[test]
fn sim_variant_all_renders_comparison_table() {
    let (ok, out, err) = fsim(&["sim", "@s27", "--random", "16", "--variant", "all"]);
    assert!(ok, "{err}");
    for name in ["csim ", "csim-V", "csim-M", "csim-MV"] {
        assert!(out.contains(name), "missing {name} in: {out}");
    }
    assert!(out.contains("avg |F|"), "{out}");
}

#[test]
fn baseline_stats_flow_through_the_same_table() {
    let (ok, out, err) = fsim(&[
        "sim",
        "@s27",
        "--random",
        "16",
        "--simulator",
        "proofs",
        "--stats",
    ]);
    assert!(ok, "{err}");
    // Headline columns are filled, probe-only columns are dashes.
    assert!(out.contains("proofs"), "{out}");
    assert!(out.contains("avg |F|"), "{out}");
    assert!(out.contains(" - "), "{out}");
}

/// The ISSUE acceptance scenario: a `--stats-json` run emits one record
/// per pattern plus a summary whose detected count matches a plain run.
#[test]
fn stats_json_emits_pattern_records_and_matching_summary() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("stats.jsonl");
    let (ok, _, err) = fsim(&[
        "sim",
        "@s27",
        "--random",
        "8",
        "--stats-json",
        json.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let text = std::fs::read_to_string(&json).unwrap();
    let lines: Vec<JsonValue> = text
        .lines()
        .map(|l| JsonValue::parse(l).expect("valid JSON line"))
        .collect();
    assert_eq!(lines.len(), 9, "8 pattern records + 1 summary");
    for (i, line) in lines[..8].iter().enumerate() {
        assert_eq!(
            line.get("type").and_then(JsonValue::as_str),
            Some("pattern")
        );
        assert_eq!(
            line.get("pattern").and_then(JsonValue::as_u64),
            Some(i as u64)
        );
        assert!(line
            .get("avg_list_len")
            .and_then(JsonValue::as_f64)
            .is_some());
    }
    let summary = &lines[8];
    assert_eq!(
        summary.get("type").and_then(JsonValue::as_str),
        Some("summary")
    );
    assert_eq!(
        summary.get("simulator").and_then(JsonValue::as_str),
        Some("csim-MV")
    );
    assert_eq!(summary.get("patterns").and_then(JsonValue::as_u64), Some(8));

    // Detected count agrees with an uninstrumented run of the same seed.
    let (ok, out, err) = fsim(&["sim", "@s27", "--random", "8"]);
    assert!(ok, "{err}");
    let plain_detected: u64 = out
        .split_whitespace()
        .find(|w| w.contains('/'))
        .and_then(|w| w.split('/').next())
        .and_then(|n| n.parse().ok())
        .expect("detected count in report");
    assert_eq!(
        summary.get("detected").and_then(JsonValue::as_u64),
        Some(plain_detected)
    );
}

/// The ISSUE acceptance scenario: `--threads 4` produces a byte-identical
/// detection dump to `--threads 1`, for every shard plan.
#[test]
fn sim_threads_detections_are_byte_identical() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = dir.join("det-serial.txt");
    let (ok, _, err) = fsim(&[
        "sim",
        "@s298g",
        "--random",
        "64",
        "--threads",
        "1",
        "--detections",
        serial.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let reference = std::fs::read_to_string(&serial).unwrap();
    assert!(!reference.trim().is_empty(), "some faults detected");
    for plan in ["round-robin", "contiguous", "level-aware"] {
        let par = dir.join(format!("det-{plan}.txt"));
        let (ok, out, err) = fsim(&[
            "sim",
            "@s298g",
            "--random",
            "64",
            "--threads",
            "4",
            "--shard-plan",
            plan,
            "--detections",
            par.to_str().unwrap(),
        ]);
        assert!(ok, "{err}");
        assert!(out.contains("csim-MV-p4"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&par).unwrap(),
            reference,
            "plan {plan} diverged from serial"
        );
    }
}

#[test]
fn transition_threads_detections_are_byte_identical() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = dir.join("tdet-serial.txt");
    let par = dir.join("tdet-par.txt");
    let (ok, _, err) = fsim(&[
        "transition",
        "@s298g",
        "--random",
        "64",
        "--detections",
        serial.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let (ok, out, err) = fsim(&[
        "transition",
        "@s298g",
        "--random",
        "64",
        "--threads",
        "4",
        "--detections",
        par.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("csim-T-p4"), "{out}");
    assert_eq!(
        std::fs::read_to_string(&par).unwrap(),
        std::fs::read_to_string(&serial).unwrap()
    );
}

#[test]
fn sim_threads_stats_renders_merged_table() {
    let (ok, out, err) = fsim(&["sim", "@s27", "--random", "16", "--threads", "2", "--stats"]);
    assert!(ok, "{err}");
    assert!(out.contains("csim-MV-p2"), "{out}");
    assert!(out.contains("avg |F|"), "{out}");
    assert!(out.contains("fault-list length per node"), "{out}");
}

#[test]
fn threads_flag_rejects_bad_values() {
    let (ok, _, err) = fsim(&["sim", "@s27", "--threads", "0"]);
    assert!(!ok);
    assert!(err.contains("--threads must be at least 1"), "{err}");
    let (ok, _, err) = fsim(&["sim", "@s27", "--shard-plan", "mystery"]);
    assert!(!ok);
    assert!(err.contains("unknown shard plan"), "{err}");
    let (ok, _, err) = fsim(&["sim", "@s27", "--threads", "2", "--simulator", "proofs"]);
    assert!(!ok);
    assert!(
        err.contains("--threads needs the concurrent simulator"),
        "{err}"
    );
}

#[test]
fn transition_stats_json_runs() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("transition-stats.jsonl");
    let (ok, out, err) = fsim(&[
        "transition",
        "@s27",
        "--random=4",
        "--stats",
        "--stats-json",
        json.to_str().unwrap(),
        "--trace-every",
        "2",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("transition_first"), "{out}");
    assert!(out.contains("pattern"), "{out}");
    let text = std::fs::read_to_string(&json).unwrap();
    assert_eq!(text.lines().count(), 5, "4 pattern records + 1 summary");
    let last = JsonValue::parse(text.lines().last().unwrap()).unwrap();
    assert_eq!(
        last.get("type").and_then(JsonValue::as_str),
        Some("summary")
    );
    assert_eq!(
        last.get("simulator").and_then(JsonValue::as_str),
        Some("csim-T")
    );
}

/// The ISSUE acceptance scenario: `fsim check` passes clean circuits and
/// fails netlists with error-severity findings, in both output formats.
#[test]
fn check_clean_builtin_passes() {
    let (ok, out, err) = fsim(&["check", "@s27"]);
    assert!(ok, "{err}");
    assert!(out.contains("0 error(s)"), "{out}");
    let (ok, out, err) = fsim(&["check", "@s298g", "--format", "json"]);
    assert!(ok, "{err}");
    assert!(out.contains("\"errors\":0"), "{out}");
}

#[test]
fn check_bad_netlist_fails_with_rule_codes() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("bad-check.bench");
    std::fs::write(
        &bench,
        "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\nz = NOT(z)\n",
    )
    .unwrap();
    let (ok, out, err) = fsim(&["check", bench.to_str().unwrap()]);
    assert!(!ok);
    assert!(out.contains("N002"), "{out}");
    assert!(out.contains("undriven-net"), "{out}");
    assert!(out.contains("N001"), "{out}");
    assert!(out.contains("line 3:12"), "{out}");
    assert!(err.contains("2 error(s)"), "{err}");

    let (ok, out, _) = fsim(&["check", bench.to_str().unwrap(), "--format", "json"]);
    assert!(!ok);
    let v = JsonValue::parse(out.trim()).expect("valid JSON report");
    assert_eq!(v.get("errors").and_then(JsonValue::as_u64), Some(2));
    let diags = out.matches("\"code\":").count();
    assert_eq!(diags, 3, "two errors plus the N004 warning: {out}");
}

#[test]
fn sim_refuses_bad_netlist_unless_no_check() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("bad-sim.bench");
    std::fs::write(&bench, "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap();
    let (ok, _, err) = fsim(&["sim", bench.to_str().unwrap(), "--random", "4"]);
    assert!(!ok);
    assert!(err.contains("refusing to simulate"), "{err}");
    assert!(err.contains("N002"), "{err}");
    assert!(err.contains("--no-check"), "{err}");
    // With --no-check the parser's own error surfaces instead.
    let (ok, _, err) = fsim(&[
        "sim",
        bench.to_str().unwrap(),
        "--random",
        "4",
        "--no-check",
    ]);
    assert!(!ok);
    assert!(err.contains("ghost"), "{err}");
}

#[test]
fn paranoid_runs_clean_on_all_paths() {
    let (ok, _, err) = fsim(&["sim", "@s27", "--random", "16", "--paranoid"]);
    assert!(ok, "{err}");
    let (ok, _, err) = fsim(&[
        "sim",
        "@s27",
        "--random",
        "16",
        "--paranoid",
        "--threads",
        "2",
    ]);
    assert!(ok, "{err}");
    let (ok, _, err) = fsim(&["transition", "@s27", "--random", "16", "--paranoid"]);
    assert!(ok, "{err}");
    let (ok, _, err) = fsim(&[
        "sim",
        "@s27",
        "--random",
        "4",
        "--paranoid",
        "--simulator",
        "serial",
    ]);
    assert!(!ok);
    assert!(err.contains("--paranoid needs the concurrent"), "{err}");
}

#[test]
fn stats_phase_table_includes_check_time() {
    let (ok, out, err) = fsim(&["sim", "@s27", "--random", "8", "--stats"]);
    assert!(ok, "{err}");
    assert!(out.contains("check"), "check phase in table: {out}");
}

/// The ISSUE acceptance scenario: a traced 4-thread run writes valid
/// Chrome Trace JSON with one track per shard, pattern spans, and at
/// least one divergence/convergence pair — without touching detections.
#[test]
fn trace_out_writes_valid_chrome_trace_without_perturbing_detections() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let plain_det = dir.join("trace-plain-det.txt");
    let (ok, _, err) = fsim(&[
        "sim",
        "@s298g",
        "--random",
        "64",
        "--detections",
        plain_det.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");

    let trace = dir.join("run.trace.json");
    let traced_det = dir.join("trace-traced-det.txt");
    let (ok, out, err) = fsim(&[
        "sim",
        "@s298g",
        "--random",
        "64",
        "--threads",
        "4",
        "--trace-out",
        trace.to_str().unwrap(),
        "--detections",
        traced_det.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("wrote trace to"), "{out}");
    assert_eq!(
        std::fs::read_to_string(&traced_det).unwrap(),
        std::fs::read_to_string(&plain_det).unwrap(),
        "tracing perturbed the detection dump"
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let stats = cfs_trace::validate_chrome_trace(&text).expect("valid Chrome Trace JSON");
    assert_eq!(stats.metadata, 5, "process name + 4 shard tracks");
    assert!(stats.pattern_spans >= 64 * 4, "{stats:?}");
    assert!(stats.divergences > 0, "{stats:?}");
    assert!(stats.convergences > 0, "{stats:?}");
    assert!(stats.counters > 0, "{stats:?}");
}

#[test]
fn trace_out_works_for_transition_faults() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("transition.trace.json");
    let (ok, out, err) = fsim(&[
        "transition",
        "@s27",
        "--random",
        "32",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("wrote trace to"), "{out}");
    let text = std::fs::read_to_string(&trace).unwrap();
    let stats = cfs_trace::validate_chrome_trace(&text).expect("valid Chrome Trace JSON");
    assert!(stats.pattern_spans >= 32, "{stats:?}");
}

#[test]
fn trace_out_rejects_unsupported_modes() {
    let (ok, _, err) = fsim(&[
        "sim",
        "@s27",
        "--random",
        "4",
        "--simulator",
        "proofs",
        "--trace-out",
        "/tmp/never-written.json",
    ]);
    assert!(!ok);
    assert!(err.contains("--trace-out needs the concurrent"), "{err}");
    let (ok, _, err) = fsim(&[
        "sim",
        "@s27",
        "--random",
        "4",
        "--variant",
        "all",
        "--trace-out",
        "/tmp/never-written.json",
    ]);
    assert!(!ok);
    assert!(err.contains("single --variant"), "{err}");
}

/// The ISSUE acceptance scenario: `fsim explain` prints the excitation →
/// propagation → detection timeline of one fault.
#[test]
fn explain_prints_fault_timeline_with_verdict() {
    let (code, out, err) = fsim_code(&["explain", "@s298g", "3", "--random", "64", "--seed", "7"]);
    assert_eq!(code, Some(0), "{err}");
    assert!(out.contains("fault 3: output of pi1 stuck at 1"), "{out}");
    assert!(out.contains("replayed 64 patterns"), "{out}");
    assert!(out.contains("diverged at"), "{out}");
    assert!(
        out.contains("verdict: detected at pattern 13 at output tl5"),
        "{out}"
    );
}

#[test]
fn explain_unknown_fault_id_exits_2_with_diagnostic() {
    let (code, _, err) = fsim_code(&["explain", "@s298g", "99999"]);
    assert_eq!(code, Some(2), "diagnostic exit code");
    assert!(err.contains("E001 [unknown-fault-id]"), "{err}");
    assert!(err.contains("valid ids: 0..306"), "{err}");
}

#[test]
fn explain_statically_untestable_fault_exits_2_with_diagnostic() {
    // Fault 130 of s298g (output of n34 s-a-1) is provably unexcitable.
    let (code, _, err) = fsim_code(&["explain", "@s298g", "130", "--random", "4"]);
    assert_eq!(code, Some(2), "diagnostic exit code");
    assert!(err.contains("F002 [statically-untestable-fault]"), "{err}");
    assert!(err.contains("never be excited"), "{err}");
    assert!(err.contains("no pattern sequence can detect it"), "{err}");
}

#[test]
fn heatmap_renders_text_table_and_json() {
    let (ok, out, err) = fsim(&[
        "heatmap", "@s298g", "--random", "32", "--seed", "5", "--top", "5",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("fault-list activity of s298g"), "{out}");
    assert!(out.contains("diverge"), "{out}");
    assert!(out.contains("more active node(s)"), "{out}");

    let (ok, out, err) = fsim(&[
        "heatmap", "@s298g", "--random", "32", "--seed", "5", "--format", "json",
    ]);
    assert!(ok, "{err}");
    let v = JsonValue::parse(out.trim()).expect("valid heatmap JSON");
    assert_eq!(v.get("circuit").and_then(JsonValue::as_str), Some("s298g"));
    let nodes = v.get("nodes").and_then(JsonValue::as_arr).unwrap();
    assert!(!nodes.is_empty(), "{out}");
    for n in nodes {
        assert!(n.get("name").and_then(JsonValue::as_str).is_some());
        assert!(n.get("total").and_then(JsonValue::as_u64).is_some());
    }
}

/// `fsim analyze --format json` must carry the same dominance-collapse
/// numbers as the text rendering — the JSON path is what CI dashboards
/// consume, so a field silently dropped there would go unnoticed.
#[test]
fn analyze_json_dominance_matches_text() {
    let (ok, out, err) = fsim(&["analyze", "@s298g", "--format", "json"]);
    assert!(ok, "{err}");
    let v = JsonValue::parse(out.trim()).expect("valid analyze JSON");
    let dom = v.get("dominance").expect("dominance object in JSON");
    let edges = dom.get("edges").and_then(JsonValue::as_u64).unwrap();
    let kept = dom.get("kept").and_then(JsonValue::as_u64).unwrap();
    let classes = dom.get("classes").and_then(JsonValue::as_u64).unwrap();
    assert!(dom.get("dropped").and_then(JsonValue::as_u64).is_some());
    assert!(kept <= classes, "{out}");

    let (ok, text, err) = fsim(&["analyze", "@s298g"]);
    assert!(ok, "{err}");
    let line = text
        .lines()
        .find(|l| l.starts_with("dominance:"))
        .expect("dominance line in text output");
    assert!(
        line.contains(&format!("{edges} edge(s)")),
        "text {line:?} vs JSON edges {edges}"
    );
    assert!(
        line.contains(&format!("{kept} of {classes} classes kept")),
        "text {line:?} vs JSON kept {kept}/{classes}"
    );
}

#[test]
fn rules_lists_the_registry_and_filters_by_code_or_slug() {
    let (ok, out, err) = fsim(&["rules"]);
    assert!(ok, "{err}");
    // Checker, analyzer, and CLI-layer codes all come from one registry.
    for needle in [
        "S001",
        "F004",
        "F005",
        "K002",
        "E003",
        "conflict-untestable-fault",
    ] {
        assert!(out.contains(needle), "{needle} missing from:\n{out}");
    }
    let (ok, by_code, err) = fsim(&["rules", "F004"]);
    assert!(ok, "{err}");
    assert_eq!(by_code.lines().count(), 1, "{by_code}");
    assert!(by_code.contains("conflict-untestable-fault"), "{by_code}");
    let (ok, by_slug, err) = fsim(&["rules", "conflict-untestable-fault"]);
    assert!(ok, "{err}");
    assert_eq!(by_code, by_slug, "code and slug filters agree");

    let (ok, json, err) = fsim(&["rules", "--format", "json"]);
    assert!(ok, "{err}");
    let v = JsonValue::parse(json.trim()).expect("valid rules JSON");
    let rows = v.as_arr().expect("rules JSON is an array");
    assert_eq!(rows.len(), out.lines().count(), "JSON and text row counts");
    for r in rows {
        assert!(r.get("code").and_then(JsonValue::as_str).is_some());
        assert!(r.get("slug").and_then(JsonValue::as_str).is_some());
        assert!(r.get("severity").and_then(JsonValue::as_str).is_some());
        assert!(r.get("description").and_then(JsonValue::as_str).is_some());
    }
}

#[test]
fn rules_unknown_code_exits_2_with_e002() {
    let (code, _, err) = fsim_code(&["rules", "F999"]);
    assert_eq!(code, Some(2), "diagnostic exit code");
    assert!(err.contains("E002 [unknown-rule-code]"), "{err}");
}

#[test]
fn implications_dumps_cross_frame_facts_in_text_and_json() {
    let (ok, out, err) = fsim(&["implications", "@s27", "G10"]);
    assert!(ok, "{err}");
    assert!(out.contains("implications of s27 net \"G10\""), "{out}");
    assert!(out.contains("@t+1"), "cross-frame fact expected:\n{out}");
    assert!(
        out.contains("facts are guaranteed at steady-state cycles t >= 2"),
        "{out}"
    );

    let (ok, json, err) = fsim(&["implications", "@s27", "G10", "--format", "json"]);
    assert!(ok, "{err}");
    let v = JsonValue::parse(json.trim()).expect("valid implications JSON");
    assert_eq!(v.get("circuit").and_then(JsonValue::as_str), Some("s27"));
    assert_eq!(v.get("net").and_then(JsonValue::as_str), Some("G10"));
    assert_eq!(v.get("frames").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(
        v.get("valid_from_cycle").and_then(JsonValue::as_u64),
        Some(2)
    );
    let imps = v.get("implications").and_then(JsonValue::as_arr).unwrap();
    assert!(!imps.is_empty(), "{json}");
    for imp in imps {
        assert!(imp.get("target").and_then(JsonValue::as_str).is_some());
        assert!(imp.get("delta").and_then(JsonValue::as_f64).is_some());
    }
}

#[test]
fn implications_unknown_net_exits_2_with_e003() {
    let (code, _, err) = fsim_code(&["implications", "@s27", "nope"]);
    assert_eq!(code, Some(2), "diagnostic exit code");
    assert!(err.contains("E003 [unknown-net]"), "{err}");
}

#[test]
fn analyze_learn_reports_conflicts_in_text_and_json() {
    let (ok, out, err) = fsim(&["analyze", "@s298g", "--learn"]);
    assert!(ok, "{err}");
    assert!(out.contains("implication learning:"), "{out}");
    assert!(out.contains("conflict-untestable"), "{out}");
    assert!(out.contains("F004 [conflict-untestable-fault]"), "{out}");
    assert!(out.contains("F005 [implication-dominance]"), "{out}");

    let (ok, json, err) = fsim(&["analyze", "@s298g", "--learn", "--format", "json"]);
    assert!(ok, "{err}");
    let v = JsonValue::parse(json.trim()).expect("valid analyze JSON");
    let learn = v.get("learn").expect("learn object in JSON");
    assert_eq!(learn.get("frames").and_then(JsonValue::as_u64), Some(2));
    assert!(
        learn
            .get("direct_edges")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0
    );
    assert!(
        learn
            .get("learned_edges")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0
    );
    assert!(learn
        .get("dominance_pairs")
        .and_then(JsonValue::as_u64)
        .is_some());
    let stuck = v.get("stuck").expect("stuck object");
    assert!(
        stuck.get("conflict").and_then(JsonValue::as_u64).unwrap() > 0,
        "{json}"
    );
    let transition = v.get("transition").expect("transition object");
    assert!(
        transition
            .get("conflict")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0,
        "{json}"
    );
}

#[test]
fn sim_learn_requires_prune() {
    let (ok, _, err) = fsim(&["sim", "@s27", "--random", "4", "--learn"]);
    assert!(!ok);
    assert!(err.contains("--learn extends --prune"), "{err}");
    let (ok, _, err) = fsim(&["sim", "@s27", "--random", "4", "--learn-frames", "3"]);
    assert!(!ok);
    assert!(err.contains("--learn-frames needs --learn"), "{err}");
}

#[test]
fn sim_learn_detections_match_full_run() {
    let dir = std::env::temp_dir().join("fsim-cli-learn-test");
    std::fs::create_dir_all(&dir).unwrap();
    let full = dir.join("full.txt");
    let learned = dir.join("learned.txt");
    let (ok, _, err) = fsim(&[
        "sim",
        "@s298g",
        "--random",
        "48",
        "--uncollapsed",
        "--detections",
        full.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let (ok, out, err) = fsim(&[
        "sim",
        "@s298g",
        "--random",
        "48",
        "--prune",
        "--learn",
        "--detections",
        learned.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("conflict-untestable"), "{out}");
    assert_eq!(
        std::fs::read_to_string(&full).unwrap(),
        std::fs::read_to_string(&learned).unwrap(),
        "learned detections diverge from the full run"
    );
}

#[test]
fn mutate_applies_deterministic_edit() {
    let (ok, out, err) = fsim(&["mutate", "@s27", "--edit", "retype", "--choice", "1"]);
    assert!(ok, "{err}");
    assert!(err.contains("retyped"), "{err}");
    let (_, out2, _) = fsim(&["mutate", "@s27", "--edit", "retype", "--choice", "1"]);
    assert_eq!(out, out2, "same (circuit, choice) must give the same edit");
    let (ok, _, err) = fsim(&["mutate", "@s27", "--edit", "frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown edit"), "{err}");
}

#[test]
fn impact_reports_transfer_split_in_text_and_json() {
    let dir = std::env::temp_dir().join("fsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let edited = dir.join("impact-dead.bench");
    let (ok, _, err) = fsim(&[
        "mutate",
        "@s298g",
        "--edit",
        "dead-logic",
        "--out",
        edited.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let (ok, out, err) = fsim(&["impact", "@s298g", edited.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("added"), "{out}");
    assert!(out.contains("faults affected"), "{out}");
    assert!(out.contains("I001 [cone-disconnected-edit]"), "{out}");

    let (ok, out, err) = fsim(&[
        "impact",
        "@s298g",
        edited.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert!(ok, "{err}");
    let v = JsonValue::parse(out.trim()).expect("valid impact JSON");
    assert_eq!(v.get("base").and_then(JsonValue::as_str), Some("s298g"));
    let edits = v
        .get("diff")
        .and_then(|d| d.get("edits"))
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert_eq!(edits.len(), 2, "{out}");
    for model in ["stuck", "transition"] {
        let m = v.get(model).expect("model stats");
        let full = m.get("full").and_then(JsonValue::as_u64).unwrap();
        let affected = m.get("affected").and_then(JsonValue::as_u64).unwrap();
        let transferred = m.get("transferred").and_then(JsonValue::as_u64).unwrap();
        assert_eq!(affected + transferred, full, "{model}: {out}");
        assert!(affected < full, "dead logic affects a strict subset: {out}");
    }
    let findings = v.get("findings").expect("findings report");
    assert_eq!(findings.get("errors").and_then(JsonValue::as_u64), Some(0));
}

/// The full incremental loop through the binary: record a baseline, apply
/// a scripted edit, re-simulate incrementally, and require byte-identical
/// detections against a cold full run — for both fault models, serial and
/// sharded, with the paranoid cross-check on.
#[test]
fn incremental_detections_match_cold_full_run() {
    let dir = std::env::temp_dir().join("fsim-cli-incr");
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_str().unwrap().to_owned();
    let edited = p("edited.bench");
    let (ok, _, err) = fsim(&["mutate", "@s298g", "--edit", "dead-logic", "--out", &edited]);
    assert!(ok, "{err}");

    for (cmd, extra) in [("sim", Some("--uncollapsed")), ("transition", None)] {
        let baseline = p(&format!("{cmd}-base.json"));
        let mut args = vec![cmd, "@s298g", "--seed", "7", "--baseline-out", &baseline];
        if let Some(f) = extra {
            args.push(f);
        }
        let (ok, _, err) = fsim(&args);
        assert!(ok, "{cmd} baseline: {err}");

        let cold = p(&format!("{cmd}-cold.txt"));
        let mut args = vec![cmd, edited.as_str(), "--seed", "7", "--detections", &cold];
        if let Some(f) = extra {
            args.push(f);
        }
        let (ok, _, err) = fsim(&args);
        assert!(ok, "{cmd} cold: {err}");

        for threads in ["1", "4"] {
            let incr = p(&format!("{cmd}-incr-{threads}.txt"));
            let (ok, out, err) = fsim(&[
                cmd,
                &edited,
                "--seed",
                "7",
                "--incremental",
                "--baseline-report",
                &baseline,
                "--threads",
                threads,
                "--paranoid",
                "--detections",
                &incr,
            ]);
            assert!(ok, "{cmd} incremental t{threads}: {err}");
            assert!(out.contains("incremental:"), "{out}");
            assert!(
                out.contains("paranoid: all") && out.contains("agree with a cold full re-run"),
                "{out}"
            );
            assert_eq!(
                std::fs::read(&cold).unwrap(),
                std::fs::read(&incr).unwrap(),
                "{cmd} t{threads}: incremental detections must be byte-identical"
            );
        }
    }
}

/// A baseline recorded under different stimulus must be refused with the
/// I002 diagnostic (exit 2), not silently transferred.
#[test]
fn incremental_rejects_stale_baseline_with_i002() {
    let dir = std::env::temp_dir().join("fsim-cli-incr");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("stale-base.json");
    let (ok, _, err) = fsim(&[
        "sim",
        "@s27",
        "--uncollapsed",
        "--seed",
        "3",
        "--baseline-out",
        baseline.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let (code, _, err) = fsim_code(&[
        "sim",
        "@s27",
        "--seed",
        "4",
        "--incremental",
        "--baseline-report",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(2), "diagnostic exit: {err}");
    assert!(err.contains("I002 [baseline-invalidated]"), "{err}");
}
