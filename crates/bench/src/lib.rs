//! Benchmark harness regenerating every table of *Lee & Reddy, DAC 1992*.
//!
//! [`tables`] holds one regeneration function per table (2–6), printing the
//! same rows the paper reports; [`workloads`] defines the circuits and test
//! sets. The `repro-tables` binary drives a full run:
//!
//! ```text
//! cargo run --release -p cfs-bench --bin repro-tables            # default
//! cargo run --release -p cfs-bench --bin repro-tables -- --quick # smoke
//! cargo run --release -p cfs-bench --bin repro-tables -- --full  # paper scale
//! ```
//!
//! Criterion micro-benchmarks (`cargo bench -p cfs-bench`) time the
//! individual simulators and the ablations (macro cap, list splitting,
//! fault dropping) on fixed workloads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod perf;
pub mod tables;
pub mod workloads;
