//! Regenerates every table of Lee & Reddy (DAC 1992) and prints them in
//! the paper's layout.
//!
//! ```text
//! repro-tables            # default: full circuit list, large ones scaled
//! repro-tables --quick    # smoke run (small budgets, heavy scaling)
//! repro-tables --full     # paper-scale circuits (slow)
//! repro-tables --table 3  # a single table (7 = the parallel speedup table)
//! repro-tables --no-check # skip the cfs-check preflight
//! ```

use cfs_bench::tables::{
    format_table2, format_table3, format_table4, format_table5, format_table6,
    format_table_parallel, headline, table2, table3, table4, table5, table6, table_parallel,
};
use cfs_bench::workloads::{
    circuit, WorkloadConfig, TABLE3_CIRCUITS, TABLE4_CIRCUITS, TABLE6_CIRCUITS,
};

/// Runs the `cfs-check` static analyses over every circuit the selected
/// tables will simulate; exits nonzero if any carries an error-severity
/// finding, so a broken generator cannot silently skew the tables.
fn preflight(only: Option<u32>, config: &WorkloadConfig) {
    let names: Vec<&str> = match only {
        Some(2) | Some(3) => TABLE3_CIRCUITS.to_vec(),
        Some(4) => TABLE4_CIRCUITS.to_vec(),
        Some(5) | Some(7) => vec!["s35932g"],
        Some(6) => TABLE6_CIRCUITS.to_vec(),
        _ => {
            let mut all = TABLE3_CIRCUITS.to_vec();
            for n in TABLE4_CIRCUITS
                .iter()
                .chain(TABLE6_CIRCUITS)
                .chain(["s35932g"].iter())
            {
                if !all.contains(n) {
                    all.push(n);
                }
            }
            all
        }
    };
    let mut bad = 0usize;
    for name in names {
        let report = cfs_check::check_circuit(&circuit(name, config));
        if report.has_errors() {
            eprint!("{}", report.render_text());
            bad += 1;
        }
    }
    if bad > 0 {
        eprintln!(
            "repro-tables: {bad} workload circuit(s) failed cfs-check (use --no-check to bypass)"
        );
        std::process::exit(2);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = WorkloadConfig::default();
    let mut only: Option<u32> = None;
    let mut no_check = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config = WorkloadConfig::quick(),
            "--full" => config = WorkloadConfig::full_scale(),
            "--no-check" => no_check = true,
            "--table" => {
                only = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--table needs a number 2..=7");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!("usage: repro-tables [--quick|--full] [--table N] [--no-check]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if !no_check {
        preflight(only, &config);
    }
    eprintln!(
        "# workload: large-circuit scale {:.2}, deterministic budget {}, random {}",
        config.large_circuit_scale, config.deterministic_budget, config.random_patterns
    );
    match only {
        None => {
            print!("{}", format_table2(&table2(TABLE3_CIRCUITS, &config)));
            println!();
            let rows3 = table3(TABLE3_CIRCUITS, &config);
            print!("{}", format_table3(&rows3));
            println!("  {}", headline(&rows3));
            println!();
            print!("{}", format_table4(&table4(TABLE4_CIRCUITS, &config)));
            println!();
            print!("{}", format_table5(&table5(&config)));
            println!();
            print!("{}", format_table6(&table6(TABLE6_CIRCUITS, &config)));
            println!();
            print!(
                "{}",
                format_table_parallel("s35932g", &table_parallel("s35932g", &config))
            );
        }
        Some(2) => print!("{}", format_table2(&table2(TABLE3_CIRCUITS, &config))),
        Some(3) => print!("{}", format_table3(&table3(TABLE3_CIRCUITS, &config))),
        Some(4) => print!("{}", format_table4(&table4(TABLE4_CIRCUITS, &config))),
        Some(5) => print!("{}", format_table5(&table5(&config))),
        Some(6) => print!("{}", format_table6(&table6(TABLE6_CIRCUITS, &config))),
        Some(7) => print!(
            "{}",
            format_table_parallel("s35932g", &table_parallel("s35932g", &config))
        ),
        Some(n) => {
            eprintln!(
                "no table {n}; tables 2..=6 reproduce the paper, 7 is the parallel speedup table"
            );
            std::process::exit(2);
        }
    }
}
