//! Regenerates every table of Lee & Reddy (DAC 1992) and prints them in
//! the paper's layout.
//!
//! ```text
//! repro-tables            # default: full circuit list, large ones scaled
//! repro-tables --quick    # smoke run (small budgets, heavy scaling)
//! repro-tables --full     # paper-scale circuits (slow)
//! repro-tables --table 3  # a single table (7 = the parallel speedup table)
//! repro-tables --no-check # skip the cfs-check preflight
//! ```
//!
//! The `BENCH.json` performance-trajectory harness (see `cfs_bench::perf`):
//!
//! ```text
//! repro-tables --bench-json BENCH.json              # default circuits
//! repro-tables --bench-json BENCH.json \
//!     --bench-circuits s27,s298g --bench-patterns 64 --bench-repeats 1 \
//!     --bench-check benchmarks/bench_smoke_baseline.json   # CI drift gate
//! repro-tables --bench-json BENCH.json \
//!     --bench-baseline benchmarks/bench_baseline_aos.json  # embed + speedups
//! ```

use cfs_bench::perf::{
    check_against, parse_bench_json, render_bench_json, run_perf, speedups_against, PerfConfig,
};
use cfs_bench::tables::{
    format_table2, format_table3, format_table4, format_table5, format_table6,
    format_table_parallel, headline, table2, table3, table4, table5, table6, table_parallel,
};
use cfs_bench::workloads::{
    circuit, WorkloadConfig, TABLE3_CIRCUITS, TABLE4_CIRCUITS, TABLE6_CIRCUITS,
};

/// Runs the `cfs-check` static analyses over every circuit the selected
/// tables will simulate; exits nonzero if any carries an error-severity
/// finding, so a broken generator cannot silently skew the tables.
fn preflight(only: Option<u32>, config: &WorkloadConfig) {
    let names: Vec<&str> = match only {
        Some(2) | Some(3) => TABLE3_CIRCUITS.to_vec(),
        Some(4) => TABLE4_CIRCUITS.to_vec(),
        Some(5) | Some(7) => vec!["s35932g"],
        Some(6) => TABLE6_CIRCUITS.to_vec(),
        _ => {
            let mut all = TABLE3_CIRCUITS.to_vec();
            for n in TABLE4_CIRCUITS
                .iter()
                .chain(TABLE6_CIRCUITS)
                .chain(["s35932g"].iter())
            {
                if !all.contains(n) {
                    all.push(n);
                }
            }
            all
        }
    };
    let mut bad = 0usize;
    for name in names {
        let report = cfs_check::check_circuit(&circuit(name, config));
        if report.has_errors() {
            eprint!("{}", report.render_text());
            bad += 1;
        }
    }
    if bad > 0 {
        eprintln!(
            "repro-tables: {bad} workload circuit(s) failed cfs-check (use --no-check to bypass)"
        );
        std::process::exit(2);
    }
}

/// Runs the `BENCH.json` harness and handles the baseline/check flags;
/// returns the process exit code.
fn run_bench_json(
    path: &str,
    config: &PerfConfig,
    baseline_path: Option<&str>,
    check_path: Option<&str>,
) -> i32 {
    eprintln!(
        "# bench: {} circuit(s), {} patterns, threads {:?}, {} repeat(s)",
        config.circuits.len(),
        config.patterns,
        config.threads,
        config.repeats
    );
    let runs = run_perf(config);
    let baseline = baseline_path.map(|p| {
        let text =
            std::fs::read_to_string(p).unwrap_or_else(|e| panic!("--bench-baseline {p:?}: {e}"));
        let parsed =
            parse_bench_json(&text).unwrap_or_else(|e| panic!("--bench-baseline {p:?}: {e}"));
        (p.to_owned(), parsed)
    });
    let json = render_bench_json(
        config,
        &runs,
        baseline.as_ref().map(|(p, b)| (p.as_str(), b.as_slice())),
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    eprintln!("# bench: wrote {path}");
    if let Some((_, base)) = &baseline {
        for (key, base_wall, wall, ratio) in speedups_against(&runs, base) {
            eprintln!("# speedup {key}: {base_wall:.4}s -> {wall:.4}s ({ratio:.2}x)");
        }
    }
    if let Some(p) = check_path {
        let text =
            std::fs::read_to_string(p).unwrap_or_else(|e| panic!("--bench-check {p:?}: {e}"));
        let base = parse_bench_json(&text).unwrap_or_else(|e| panic!("--bench-check {p:?}: {e}"));
        let drifts = check_against(&runs, &base);
        if !drifts.is_empty() {
            for d in &drifts {
                eprintln!("bench drift: {d}");
            }
            eprintln!(
                "repro-tables: {} deterministic counter(s) drifted from {p}",
                drifts.len()
            );
            return 1;
        }
        eprintln!("# bench: deterministic counters match {p}");
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = WorkloadConfig::default();
    let mut only: Option<u32> = None;
    let mut no_check = false;
    let mut bench_json: Option<String> = None;
    let mut bench_config = PerfConfig::default();
    let mut bench_baseline: Option<String> = None;
    let mut bench_check: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| -> String {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => config = WorkloadConfig::quick(),
            "--full" => config = WorkloadConfig::full_scale(),
            "--no-check" => no_check = true,
            "--bench-json" => bench_json = Some(take("--bench-json")),
            "--bench-baseline" => bench_baseline = Some(take("--bench-baseline")),
            "--bench-check" => bench_check = Some(take("--bench-check")),
            "--bench-circuits" => {
                bench_config.circuits = take("--bench-circuits")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(ToOwned::to_owned)
                    .collect();
            }
            "--bench-patterns" => {
                bench_config.patterns = take("--bench-patterns").parse().unwrap_or_else(|_| {
                    eprintln!("--bench-patterns needs a number");
                    std::process::exit(2);
                });
            }
            "--bench-repeats" => {
                bench_config.repeats = take("--bench-repeats").parse().unwrap_or_else(|_| {
                    eprintln!("--bench-repeats needs a number");
                    std::process::exit(2);
                });
            }
            "--bench-threads" => {
                bench_config.threads = take("--bench-threads")
                    .split(',')
                    .map(|s| {
                        s.parse().unwrap_or_else(|_| {
                            eprintln!("--bench-threads needs comma-separated numbers");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--table" => {
                only = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--table needs a number 2..=7");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro-tables [--quick|--full] [--table N] [--no-check]\n       \
                     repro-tables --bench-json PATH [--bench-circuits a,b] [--bench-patterns N]\n                    \
                     [--bench-threads 1,2] [--bench-repeats N]\n                    \
                     [--bench-baseline FILE] [--bench-check FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = bench_json {
        std::process::exit(run_bench_json(
            &path,
            &bench_config,
            bench_baseline.as_deref(),
            bench_check.as_deref(),
        ));
    }
    if !no_check {
        preflight(only, &config);
    }
    eprintln!(
        "# workload: large-circuit scale {:.2}, deterministic budget {}, random {}",
        config.large_circuit_scale, config.deterministic_budget, config.random_patterns
    );
    match only {
        None => {
            print!("{}", format_table2(&table2(TABLE3_CIRCUITS, &config)));
            println!();
            let rows3 = table3(TABLE3_CIRCUITS, &config);
            print!("{}", format_table3(&rows3));
            println!("  {}", headline(&rows3));
            println!();
            print!("{}", format_table4(&table4(TABLE4_CIRCUITS, &config)));
            println!();
            print!("{}", format_table5(&table5(&config)));
            println!();
            print!("{}", format_table6(&table6(TABLE6_CIRCUITS, &config)));
            println!();
            print!(
                "{}",
                format_table_parallel("s35932g", &table_parallel("s35932g", &config))
            );
        }
        Some(2) => print!("{}", format_table2(&table2(TABLE3_CIRCUITS, &config))),
        Some(3) => print!("{}", format_table3(&table3(TABLE3_CIRCUITS, &config))),
        Some(4) => print!("{}", format_table4(&table4(TABLE4_CIRCUITS, &config))),
        Some(5) => print!("{}", format_table5(&table5(&config))),
        Some(6) => print!("{}", format_table6(&table6(TABLE6_CIRCUITS, &config))),
        Some(7) => print!(
            "{}",
            format_table_parallel("s35932g", &table_parallel("s35932g", &config))
        ),
        Some(n) => {
            eprintln!(
                "no table {n}; tables 2..=6 reproduce the paper, 7 is the parallel speedup table"
            );
            std::process::exit(2);
        }
    }
}
