//! Benchmark circuits and test sets for the table reproductions.

use cfs_atpg::{generate_tests, random_patterns, trim_tail, AtpgOptions};
use cfs_faults::{collapse_stuck_at, StuckAt};
use cfs_logic::Logic;
use cfs_netlist::generate::{benchmark_spec, generate};
use cfs_netlist::Circuit;

/// The circuits of the paper's Table 3, in table order.
pub const TABLE3_CIRCUITS: &[&str] = &[
    "s298g", "s344g", "s349g", "s386g", "s400g", "s444g", "s526g", "s641g", "s713g", "s820g",
    "s832g", "s1196g", "s1238g", "s1423g", "s1488g", "s1494g", "s5378g", "s35932g",
];

/// The circuits of Table 4 (higher-coverage deterministic tests).
pub const TABLE4_CIRCUITS: &[&str] = &[
    "s298g", "s382g", "s400g", "s444g", "s526g", "s641g", "s713g",
];

/// The circuits of Table 6 (transition fault simulation).
pub const TABLE6_CIRCUITS: &[&str] = &[
    "s298g", "s344g", "s386g", "s400g", "s444g", "s526g", "s641g", "s820g", "s1196g", "s1494g",
];

/// Global workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Size ratio applied to the two largest circuits (`s5378g`,
    /// `s35932g`) so a full table run stays laptop-friendly; `1.0`
    /// reproduces the paper-scale circuits.
    pub large_circuit_scale: f64,
    /// Random budget used to derive the Table 2/3 deterministic test sets.
    pub deterministic_budget: usize,
    /// Random-pattern count for Table 5.
    pub random_patterns: usize,
    /// Seed for all workload randomness.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            large_circuit_scale: 0.25,
            deterministic_budget: 384,
            random_patterns: 512,
            seed: 0x01992DAC,
        }
    }
}

impl WorkloadConfig {
    /// A configuration that reproduces the full paper-scale circuits.
    pub fn full_scale() -> Self {
        WorkloadConfig {
            large_circuit_scale: 1.0,
            ..Default::default()
        }
    }

    /// A fast configuration for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        WorkloadConfig {
            large_circuit_scale: 0.05,
            deterministic_budget: 96,
            random_patterns: 128,
            seed: 0x01992DAC,
        }
    }
}

/// Instantiates a benchmark circuit under the configuration (the two
/// largest are scaled by `large_circuit_scale`).
///
/// # Panics
///
/// Panics on an unknown circuit name.
pub fn circuit(name: &str, config: &WorkloadConfig) -> Circuit {
    let spec = benchmark_spec(name).unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
    let spec = if matches!(name, "s5378g" | "s35932g") && config.large_circuit_scale < 1.0 {
        spec.scaled(config.large_circuit_scale)
    } else {
        spec
    };
    generate(&spec)
}

/// The collapsed stuck-at fault universe used throughout the tables.
pub fn fault_universe(circuit: &Circuit) -> Vec<StuckAt> {
    collapse_stuck_at(circuit).representatives
}

/// The Table 2/3 "deterministic patterns": a random sequence compacted by
/// fault-simulation tail trimming (the paper used test sets provided with
/// PROOFS, which we do not have; see `DESIGN.md`).
pub fn deterministic_tests(
    circuit: &Circuit,
    faults: &[StuckAt],
    config: &WorkloadConfig,
) -> Vec<Vec<Logic>> {
    let raw = random_patterns(circuit, config.deterministic_budget, config.seed);
    trim_tail(circuit, faults, raw)
}

/// The Table 4 "higher coverage" tests: the full ATPG flow (random phase +
/// PODEM over time-frame windows).
pub fn atpg_tests(
    circuit: &Circuit,
    faults: &[StuckAt],
    config: &WorkloadConfig,
) -> Vec<Vec<Logic>> {
    let outcome = generate_tests(
        circuit,
        faults,
        AtpgOptions {
            max_frames: 6,
            backtrack_limit: 300,
            random_patterns: config.deterministic_budget,
            seed: config.seed,
        },
    );
    outcome.patterns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_affects_only_large_circuits() {
        let cfg = WorkloadConfig::quick();
        let small = circuit("s298g", &cfg);
        assert_eq!(small.num_comb_gates(), 119);
        let large = circuit("s35932g", &cfg);
        assert!(large.num_comb_gates() < 16065 / 10);
    }

    #[test]
    fn deterministic_tests_are_compact_and_useful() {
        let cfg = WorkloadConfig::quick();
        let c = circuit("s298g", &cfg);
        let faults = fault_universe(&c);
        let tests = deterministic_tests(&c, &faults, &cfg);
        assert!(!tests.is_empty());
        assert!(tests.len() <= cfg.deterministic_budget);
    }
}
