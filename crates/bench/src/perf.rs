//! The `BENCH.json` performance harness: one documented command that runs
//! the bundled ISCAS-style example circuits across every concurrent-engine
//! configuration (all four `csim` variants plus `csim-T`, serial and
//! fault-sharded parallel) and records a machine-readable trajectory —
//! wall time, events per pattern, detection counts, peak arena bytes, and
//! per-phase timings from the existing telemetry.
//!
//! ```text
//! cargo run --release -p cfs-bench --bin repro-tables -- --bench-json BENCH.json
//! ```
//!
//! The JSON is stable and diffable: work counters (`events_per_pattern`,
//! `detected`) are deterministic for a given circuit/seed and act as a
//! drift gate in CI (`--bench-check`), while timings are advisory. Passing
//! `--bench-baseline FILE` embeds a previously recorded run and computes
//! wall-time speedups against it, which is how a perf PR records a real
//! before/after trajectory.
//!
//! Every stuck-at and transition cell has a `-pruned` twin that runs the
//! statically pruned universe (`cfs_check::prune_stuck_at` /
//! `prune_transition`) and records both the simulated and the full
//! uncollapsed fault count, so the trajectory captures how much work the
//! static analyses remove. Pruned cells report full-universe detection
//! counts (after expansion), making them comparable to an `--uncollapsed`
//! run.
//!
//! Each circuit additionally carries a serial `csim-MV-learned` and a
//! `csim-T-learned` cell: the `-pruned` twin under implication learning
//! (`--prune --learn`), simulating the conflict-pruned universe from
//! `prune_stuck_at_learned` / `prune_transition_learned`. Because
//! `faults` / `faults_full` are part of the drift gate, these cells pin
//! the learned-universe sizes — a regression in pruning power shows up
//! as workload drift in `--bench-check`.
//!
//! Every *parallel* cell (`threads > 1`) additionally has a `-batched`
//! twin that runs the two-dimensional (pattern-window × fault-shard)
//! work-stealing schedule — window 32, stealing on, 2× oversharded, the
//! CLI's `--batch-windows 32 --steal` — so the drift gate also pins the
//! scheduler's determinism: its `events` and `detected` counters must
//! match the baseline exactly even though the steal schedule varies run
//! to run.
//!
//! Each circuit also carries a `csim-MV-incremental` and a
//! `csim-T-incremental` cell: a scripted dead-logic edit is applied, the
//! change-impact analysis splits the edited circuit's uncollapsed
//! universe into affected and transferred faults, and only the affected
//! cone is re-simulated (the CLI's `--incremental`); the baseline run
//! that fates transfer from is untimed. `faults` records the affected
//! count, `faults_full` the full universe, and `detected` the
//! full-universe detections after fate transfer, so the cell is directly
//! comparable to an `--uncollapsed` run and the drift gate pins the
//! transfer split itself.
//!
//! Finally each circuit carries the quiescence trio — `csim-MV-hold`,
//! `csim-MV-quiesce`, and `csim-MV-resume` — serial cells on burst-idle
//! stimulus (a random vector held 4 cycles, then 12 cycles of the
//! all-zero idle vector, so the circuit actually goes quiet between
//! functional bursts). `-hold` is the ungated reference, `-quiesce` the
//! same run under the engine's quiescence gate (`--quiesce-window 2`;
//! the harness asserts detections stay bit-identical), and `-resume`
//! times the second half of the gated run after restoring a
//! byte-round-tripped mid-run checkpoint into a fresh simulator, with
//! the full run's counters (the checkpoint restores them) so the drift
//! gate pins restart determinism too.

use std::time::Instant;

use cfs_check::{
    analyze_circuit, classify_stuck_at, classify_transition, diff_netlists, impact_analysis,
    prune_stuck_at, prune_stuck_at_learned, prune_transition, prune_transition_learned,
    ImplicationGraph, LearnOptions,
};
use cfs_core::{
    BatchOptions, Checkpoint, ConcurrentSim, CsimOptions, CsimVariant, NullProbe, ParallelSim,
    ParallelTransitionSim, ShardPlan, TransitionSim,
};
use cfs_faults::{
    collapse_stuck_at, enumerate_stuck_at, enumerate_transition, FaultStatus, ImpactUniverse,
    PrunedUniverse, StuckAt, TransitionFault,
};
use cfs_logic::Logic;
use cfs_netlist::{apply_edit, BenchEdit, Circuit};
use cfs_telemetry::{
    write_json_f64, write_json_string, JsonValue, MetricsSnapshot, Phase, SimMetrics,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default circuit list: the bundled `examples/bench` netlists, smallest to
/// largest (the last one is the headline speedup circuit).
pub const DEFAULT_CIRCUITS: &[&str] = &["s27", "s298g", "s641g", "s1238g"];

/// Configuration of one harness invocation.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Circuits to run (`s27` or generated `s*g` benchmark names).
    pub circuits: Vec<String>,
    /// Random patterns per circuit.
    pub patterns: usize,
    /// Thread counts: `1` is the serial engine, anything larger the
    /// fault-sharded parallel engine.
    pub threads: Vec<usize>,
    /// Timing repetitions; the recorded wall time is the minimum.
    pub repeats: usize,
    /// Seed for the pattern generator.
    pub seed: u64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            circuits: DEFAULT_CIRCUITS.iter().map(|s| (*s).to_owned()).collect(),
            patterns: 256,
            threads: vec![1, 2],
            repeats: 3,
            seed: 0x01992DAC,
        }
    }
}

/// One measured configuration: a circuit × simulator variant × thread
/// count.
#[derive(Debug, Clone)]
pub struct PerfRun {
    /// Circuit name.
    pub circuit: String,
    /// Simulator name (`csim`, `csim-V`, `csim-M`, `csim-MV`, `csim-T`).
    pub variant: String,
    /// Worker threads (1 = serial path).
    pub threads: usize,
    /// Patterns simulated.
    pub patterns: usize,
    /// Faults actually simulated.
    pub faults: usize,
    /// Full uncollapsed universe behind a `-pruned` cell (`0` for plain
    /// cells, which simulate classically collapsed representatives).
    pub faults_full: usize,
    /// Minimum wall time over the configured repeats, in seconds.
    pub wall_seconds: f64,
    /// Node activations (deterministic work measure).
    pub events: u64,
    /// `events / patterns`.
    pub events_per_pattern: f64,
    /// Faults detected (deterministic).
    pub detected: usize,
    /// Peak live fault elements across all engines.
    pub peak_elements: usize,
    /// Peak fault-element storage in bytes (`peak_elements ×
    /// ELEMENT_BYTES`).
    pub peak_arena_bytes: usize,
    /// Full modeled memory in bytes.
    pub memory_bytes: usize,
    /// Per-phase seconds from one instrumented repetition, in
    /// [`Phase::ALL`] order (zero entries omitted from the JSON).
    pub phase_seconds: Vec<(&'static str, f64)>,
}

impl PerfRun {
    /// Stable identity key within a BENCH.json file.
    pub fn key(&self) -> String {
        format!("{}/{}/t{}", self.circuit, self.variant, self.threads)
    }
}

/// Resolves a harness circuit name (the paper's `s27` or a generated
/// benchmark).
///
/// # Panics
///
/// Panics on an unknown name.
pub fn perf_circuit(name: &str) -> Circuit {
    if name == "s27" {
        cfs_netlist::data::s27()
    } else {
        cfs_netlist::generate::benchmark(name)
            .unwrap_or_else(|| panic!("unknown benchmark circuit {name:?}"))
    }
}

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// Shape of the quiescence cells' stimulus: fresh random vectors every
/// cycle never let the circuit go quiet, so each burst drives
/// [`QUIESCE_ACTIVE`] cycles of a held random vector (excitation plus
/// settling) followed by [`QUIESCE_QUIET`] cycles of the all-zero idle
/// vector — a functional burst separated by the idle spans the gate
/// targets.
const QUIESCE_ACTIVE: usize = 4;
const QUIESCE_QUIET: usize = 12;

/// Gating window for the `-quiesce` and `-resume` cells (the CLI's
/// `--quiesce-window`).
const QUIESCE_WINDOW: u32 = 2;

/// Burst-idle stimulus for the quiescence cells (see [`QUIESCE_ACTIVE`]),
/// truncated to exactly `count` patterns so the cells stay comparable to
/// the harness's plain cells.
fn hold_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let idle = vec![Logic::Zero; circuit.num_inputs()];
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let p: Vec<Logic> = (0..circuit.num_inputs())
            .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
            .collect();
        for i in 0..QUIESCE_ACTIVE + QUIESCE_QUIET {
            if out.len() == count {
                break;
            }
            out.push(if i < QUIESCE_ACTIVE {
                p.clone()
            } else {
                idle.clone()
            });
        }
    }
    out
}

fn phase_seconds(snap: &MetricsSnapshot) -> Vec<(&'static str, f64)> {
    Phase::ALL
        .iter()
        .map(|&p| (p.name(), snap.phases.get(p).as_secs_f64()))
        .filter(|&(_, s)| s > 0.0)
        .collect()
}

/// Runs one stuck-at configuration: timed uninstrumented repeats plus one
/// instrumented repetition for the phase breakdown.
fn run_stuck(
    circuit: &Circuit,
    variant: CsimVariant,
    threads: usize,
    patterns: &[Vec<Logic>],
    repeats: usize,
) -> PerfRun {
    let faults = collapse_stuck_at(circuit).representatives;
    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    let mut detected = 0usize;
    let mut peak_elements = 0usize;
    let mut peak_arena_bytes = 0usize;
    let mut memory_bytes = 0usize;
    for _ in 0..repeats.max(1) {
        if threads == 1 {
            let mut sim = ConcurrentSim::new(circuit, &faults, variant.options());
            let start = Instant::now();
            sim.run(patterns);
            wall = wall.min(start.elapsed().as_secs_f64());
            events = sim.events();
            detected = sim.detected();
            peak_elements = sim.peak_elements();
            peak_arena_bytes = peak_elements * cfs_core::Arena::ELEMENT_BYTES;
            memory_bytes = sim.memory_bytes();
        } else {
            let mut sim = ParallelSim::new(
                circuit,
                &faults,
                variant.options(),
                threads,
                ShardPlan::RoundRobin,
            );
            let start = Instant::now();
            sim.run(patterns);
            wall = wall.min(start.elapsed().as_secs_f64());
            events = sim.events();
            detected = sim.detected();
            // The per-shard maximum: shards partition the fault universe,
            // so the widest shard bounds the widest per-engine arena a
            // reader has to provision for.
            peak_elements = sim.peak_elements();
            peak_arena_bytes = peak_elements * cfs_core::Arena::ELEMENT_BYTES;
            memory_bytes = sim.memory_bytes();
        }
    }
    let phases = if threads == 1 {
        let mut sim = ConcurrentSim::instrumented(circuit, &faults, variant.options());
        sim.run(patterns);
        phase_seconds(&sim.snapshot())
    } else {
        let mut sim = ParallelSim::instrumented(
            circuit,
            &faults,
            variant.options(),
            threads,
            ShardPlan::RoundRobin,
        );
        sim.run(patterns);
        phase_seconds(&sim.snapshot())
    };
    PerfRun {
        circuit: circuit.name().to_owned(),
        variant: variant.name().to_owned(),
        threads,
        patterns: patterns.len(),
        faults: faults.len(),
        faults_full: 0,
        wall_seconds: wall,
        events,
        events_per_pattern: events as f64 / patterns.len().max(1) as f64,
        detected,
        peak_elements,
        peak_arena_bytes,
        memory_bytes,
        phase_seconds: phases,
    }
}

/// Window size for the `-batched` twin cells (the CLI's
/// `--batch-windows 32 --steal`).
const BATCH_WINDOW: usize = 32;

fn batch_options() -> BatchOptions {
    BatchOptions {
        window: BATCH_WINDOW,
        steal: true,
        ..BatchOptions::default()
    }
}

/// The `-batched` twin of a parallel [`run_stuck`] cell: the same fault
/// universe under the two-dimensional (pattern-window × fault-shard)
/// work-stealing schedule, 2× oversharded so stealing has slack.
fn run_stuck_batched(
    circuit: &Circuit,
    variant: CsimVariant,
    threads: usize,
    patterns: &[Vec<Logic>],
    repeats: usize,
) -> PerfRun {
    let faults = collapse_stuck_at(circuit).representatives;
    let batch = batch_options();
    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    let mut detected = 0usize;
    let mut peak_elements = 0usize;
    let mut memory_bytes = 0usize;
    for _ in 0..repeats.max(1) {
        let mut sim = ParallelSim::with_probes_sharded(
            circuit,
            &faults,
            variant.options(),
            threads,
            threads * 2,
            ShardPlan::RoundRobin,
            None,
            |_| NullProbe,
        );
        let start = Instant::now();
        sim.run_batched(patterns, &batch);
        wall = wall.min(start.elapsed().as_secs_f64());
        events = sim.events();
        detected = sim.detected();
        peak_elements = sim.peak_elements();
        memory_bytes = sim.memory_bytes();
    }
    let phases = {
        let mut sim = ParallelSim::with_probes_sharded(
            circuit,
            &faults,
            variant.options(),
            threads,
            threads * 2,
            ShardPlan::RoundRobin,
            None,
            |_| SimMetrics::new(),
        );
        sim.run_batched(patterns, &batch);
        phase_seconds(&sim.snapshot())
    };
    PerfRun {
        circuit: circuit.name().to_owned(),
        variant: format!("{}-batched", variant.name()),
        threads,
        patterns: patterns.len(),
        faults: faults.len(),
        faults_full: 0,
        wall_seconds: wall,
        events,
        events_per_pattern: events as f64 / patterns.len().max(1) as f64,
        detected,
        peak_elements,
        peak_arena_bytes: peak_elements * cfs_core::Arena::ELEMENT_BYTES,
        memory_bytes,
        phase_seconds: phases,
    }
}

/// The `-batched` twin of [`run_transition`]: fault-sharded and
/// pattern-windowed under the work-stealing schedule.
fn run_transition_batched(
    circuit: &Circuit,
    threads: usize,
    patterns: &[Vec<Logic>],
    repeats: usize,
) -> PerfRun {
    let faults = enumerate_transition(circuit);
    let batch = batch_options();
    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    let mut detected = 0usize;
    let mut peak_elements = 0usize;
    let mut memory_bytes = 0usize;
    for _ in 0..repeats.max(1) {
        let mut sim = ParallelTransitionSim::with_probes_sharded(
            circuit,
            &faults,
            Default::default(),
            threads,
            threads * 2,
            ShardPlan::RoundRobin,
            None,
            |_| NullProbe,
        );
        let start = Instant::now();
        sim.run_batched(patterns, &batch);
        wall = wall.min(start.elapsed().as_secs_f64());
        events = sim.events();
        detected = sim.detected();
        peak_elements = sim.peak_elements();
        memory_bytes = sim.memory_bytes();
    }
    let phases = {
        let mut sim = ParallelTransitionSim::with_probes_sharded(
            circuit,
            &faults,
            Default::default(),
            threads,
            threads * 2,
            ShardPlan::RoundRobin,
            None,
            |_| SimMetrics::new(),
        );
        sim.run_batched(patterns, &batch);
        phase_seconds(&sim.snapshot())
    };
    PerfRun {
        circuit: circuit.name().to_owned(),
        variant: "csim-T-batched".to_owned(),
        threads,
        patterns: patterns.len(),
        faults: faults.len(),
        faults_full: 0,
        wall_seconds: wall,
        events,
        events_per_pattern: events as f64 / patterns.len().max(1) as f64,
        detected,
        peak_elements,
        peak_arena_bytes: peak_elements * cfs_core::Arena::ELEMENT_BYTES,
        memory_bytes,
        phase_seconds: phases,
    }
}

/// Detections in the full universe after expanding a pruned run's statuses.
fn expanded_detected<F: Copy>(pruned: &PrunedUniverse<F>, statuses: &[FaultStatus]) -> usize {
    pruned
        .expand_statuses(statuses)
        .iter()
        .filter(|s| matches!(s, FaultStatus::Detected { .. }))
        .count()
}

/// The `-pruned` twin of [`run_stuck`]: simulates only the statically
/// surviving exact-class representatives and reports full-universe
/// detection counts. The same machinery measures the `-learned` cells —
/// only the universe (conflict-pruned) and the variant suffix differ.
fn run_stuck_pruned(
    circuit: &Circuit,
    pruned: &PrunedUniverse<StuckAt>,
    variant: CsimVariant,
    threads: usize,
    patterns: &[Vec<Logic>],
    repeats: usize,
    suffix: &str,
) -> PerfRun {
    let faults = &pruned.sim;
    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    let mut detected = 0usize;
    let mut peak_elements = 0usize;
    let mut peak_arena_bytes = 0usize;
    let mut memory_bytes = 0usize;
    for _ in 0..repeats.max(1) {
        if threads == 1 {
            let mut sim = ConcurrentSim::new(circuit, faults, variant.options());
            let start = Instant::now();
            let report = sim.run(patterns);
            wall = wall.min(start.elapsed().as_secs_f64());
            events = sim.events();
            detected = expanded_detected(pruned, &report.statuses);
            peak_elements = sim.peak_elements();
            peak_arena_bytes = peak_elements * cfs_core::Arena::ELEMENT_BYTES;
            memory_bytes = sim.memory_bytes();
        } else {
            let mut sim = ParallelSim::new(
                circuit,
                faults,
                variant.options(),
                threads,
                ShardPlan::RoundRobin,
            );
            let start = Instant::now();
            let report = sim.run(patterns);
            wall = wall.min(start.elapsed().as_secs_f64());
            events = sim.events();
            detected = expanded_detected(pruned, &report.statuses);
            peak_elements = sim.peak_elements();
            peak_arena_bytes = peak_elements * cfs_core::Arena::ELEMENT_BYTES;
            memory_bytes = sim.memory_bytes();
        }
    }
    let phases = if threads == 1 {
        let mut sim = ConcurrentSim::instrumented(circuit, faults, variant.options());
        sim.run(patterns);
        phase_seconds(&sim.snapshot())
    } else {
        let mut sim = ParallelSim::instrumented(
            circuit,
            faults,
            variant.options(),
            threads,
            ShardPlan::RoundRobin,
        );
        sim.run(patterns);
        phase_seconds(&sim.snapshot())
    };
    PerfRun {
        circuit: circuit.name().to_owned(),
        variant: format!("{}{suffix}", variant.name()),
        threads,
        patterns: patterns.len(),
        faults: faults.len(),
        faults_full: pruned.stats.full,
        wall_seconds: wall,
        events,
        events_per_pattern: events as f64 / patterns.len().max(1) as f64,
        detected,
        peak_elements,
        peak_arena_bytes,
        memory_bytes,
        phase_seconds: phases,
    }
}

/// Runs the serial transition simulator on the same pattern set.
fn run_transition(circuit: &Circuit, patterns: &[Vec<Logic>], repeats: usize) -> PerfRun {
    let faults = enumerate_transition(circuit);
    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    let mut detected = 0usize;
    let mut peak_elements = 0usize;
    let mut memory_bytes = 0usize;
    for _ in 0..repeats.max(1) {
        let mut sim = TransitionSim::new(circuit, &faults, Default::default());
        let start = Instant::now();
        sim.run(patterns);
        wall = wall.min(start.elapsed().as_secs_f64());
        events = sim.events();
        detected = sim.detected();
        peak_elements = sim.peak_elements();
        memory_bytes = sim.memory_bytes();
    }
    let mut sim = TransitionSim::instrumented(circuit, &faults, Default::default());
    sim.run(patterns);
    let phases = phase_seconds(&sim.snapshot());
    PerfRun {
        circuit: circuit.name().to_owned(),
        variant: "csim-T".to_owned(),
        threads: 1,
        patterns: patterns.len(),
        faults: faults.len(),
        faults_full: 0,
        wall_seconds: wall,
        events,
        events_per_pattern: events as f64 / patterns.len().max(1) as f64,
        detected,
        peak_elements,
        peak_arena_bytes: peak_elements * cfs_core::Arena::ELEMENT_BYTES,
        memory_bytes,
        phase_seconds: phases,
    }
}

/// The `-pruned` twin of [`run_transition`]; also measures the
/// `-learned` cell via `suffix`.
fn run_transition_pruned(
    circuit: &Circuit,
    pruned: &PrunedUniverse<TransitionFault>,
    patterns: &[Vec<Logic>],
    repeats: usize,
    suffix: &str,
) -> PerfRun {
    let faults = &pruned.sim;
    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    let mut detected = 0usize;
    let mut peak_elements = 0usize;
    let mut memory_bytes = 0usize;
    for _ in 0..repeats.max(1) {
        let mut sim = TransitionSim::new(circuit, faults, Default::default());
        let start = Instant::now();
        let report = sim.run(patterns);
        wall = wall.min(start.elapsed().as_secs_f64());
        events = sim.events();
        detected = expanded_detected(pruned, &report.statuses);
        peak_elements = sim.peak_elements();
        memory_bytes = sim.memory_bytes();
    }
    let mut sim = TransitionSim::instrumented(circuit, faults, Default::default());
    sim.run(patterns);
    let phases = phase_seconds(&sim.snapshot());
    PerfRun {
        circuit: circuit.name().to_owned(),
        variant: format!("csim-T{suffix}"),
        threads: 1,
        patterns: patterns.len(),
        faults: faults.len(),
        faults_full: pruned.stats.full,
        wall_seconds: wall,
        events,
        events_per_pattern: events as f64 / patterns.len().max(1) as f64,
        detected,
        peak_elements,
        peak_arena_bytes: peak_elements * cfs_core::Arena::ELEMENT_BYTES,
        memory_bytes,
        phase_seconds: phases,
    }
}

/// Detections in the full universe after fate transfer through an
/// [`ImpactUniverse`] expansion.
fn impact_detected<F: Copy>(
    universe: &ImpactUniverse<F>,
    resim: &[FaultStatus],
    baseline: &[FaultStatus],
) -> usize {
    universe
        .expand_statuses(resim, baseline)
        .iter()
        .filter(|s| matches!(s, FaultStatus::Detected { .. }))
        .count()
}

/// The `csim-MV-incremental` cell: applies the scripted dead-logic edit,
/// records baseline fates over the unedited circuit's full uncollapsed
/// universe (untimed), then times re-simulation of only the change-impact
/// affected cone on the edited circuit. `detected` is the full-universe
/// count after fate transfer — the CLI's `--incremental` path.
fn run_stuck_incremental(circuit: &Circuit, patterns: &[Vec<Logic>], repeats: usize) -> PerfRun {
    let applied =
        apply_edit(circuit, BenchEdit::DeadLogic, 0).expect("dead logic applies to every fixture");
    let edited = &applied.circuit;
    let diff = diff_netlists(circuit, edited, None, None);
    let analysis = impact_analysis(circuit, edited, diff);
    let universe = classify_stuck_at(circuit, edited, &analysis);
    let variant = CsimVariant::Mv;
    let baseline = ConcurrentSim::new(circuit, &enumerate_stuck_at(circuit), variant.options())
        .run(patterns)
        .statuses;
    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    let mut detected = 0usize;
    let mut peak_elements = 0usize;
    let mut memory_bytes = 0usize;
    for _ in 0..repeats.max(1) {
        let mut sim = ConcurrentSim::new(edited, &universe.affected, variant.options());
        let start = Instant::now();
        let report = sim.run(patterns);
        wall = wall.min(start.elapsed().as_secs_f64());
        events = sim.events();
        detected = impact_detected(&universe, &report.statuses, &baseline);
        peak_elements = sim.peak_elements();
        memory_bytes = sim.memory_bytes();
    }
    let mut sim = ConcurrentSim::instrumented(edited, &universe.affected, variant.options());
    sim.run(patterns);
    let phases = phase_seconds(&sim.snapshot());
    PerfRun {
        circuit: circuit.name().to_owned(),
        variant: format!("{}-incremental", variant.name()),
        threads: 1,
        patterns: patterns.len(),
        faults: universe.affected.len(),
        faults_full: universe.stats.full,
        wall_seconds: wall,
        events,
        events_per_pattern: events as f64 / patterns.len().max(1) as f64,
        detected,
        peak_elements,
        peak_arena_bytes: peak_elements * cfs_core::Arena::ELEMENT_BYTES,
        memory_bytes,
        phase_seconds: phases,
    }
}

/// The transition-fault mirror of [`run_stuck_incremental`]
/// (`csim-T-incremental`).
fn run_transition_incremental(
    circuit: &Circuit,
    patterns: &[Vec<Logic>],
    repeats: usize,
) -> PerfRun {
    let applied =
        apply_edit(circuit, BenchEdit::DeadLogic, 0).expect("dead logic applies to every fixture");
    let edited = &applied.circuit;
    let diff = diff_netlists(circuit, edited, None, None);
    let analysis = impact_analysis(circuit, edited, diff);
    let universe = classify_transition(circuit, edited, &analysis);
    let baseline = TransitionSim::new(circuit, &enumerate_transition(circuit), Default::default())
        .run(patterns)
        .statuses;
    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    let mut detected = 0usize;
    let mut peak_elements = 0usize;
    let mut memory_bytes = 0usize;
    for _ in 0..repeats.max(1) {
        let mut sim = TransitionSim::new(edited, &universe.affected, Default::default());
        let start = Instant::now();
        let report = sim.run(patterns);
        wall = wall.min(start.elapsed().as_secs_f64());
        events = sim.events();
        detected = impact_detected(&universe, &report.statuses, &baseline);
        peak_elements = sim.peak_elements();
        memory_bytes = sim.memory_bytes();
    }
    let mut sim = TransitionSim::instrumented(edited, &universe.affected, Default::default());
    sim.run(patterns);
    let phases = phase_seconds(&sim.snapshot());
    PerfRun {
        circuit: circuit.name().to_owned(),
        variant: "csim-T-incremental".to_owned(),
        threads: 1,
        patterns: patterns.len(),
        faults: universe.affected.len(),
        faults_full: universe.stats.full,
        wall_seconds: wall,
        events,
        events_per_pattern: events as f64 / patterns.len().max(1) as f64,
        detected,
        peak_elements,
        peak_arena_bytes: peak_elements * cfs_core::Arena::ELEMENT_BYTES,
        memory_bytes,
        phase_seconds: phases,
    }
}

/// `variant.options()` with the harness gating window applied.
fn gated_options(variant: CsimVariant) -> CsimOptions {
    CsimOptions {
        quiesce_window: QUIESCE_WINDOW,
        ..variant.options()
    }
}

/// The quiescence trio: three serial `csim-MV` cells on the burst-hold
/// stimulus ([`hold_patterns`]).
///
/// * `csim-MV-hold` — the ungated reference; what the engine costs when
///   the stimulus goes quiet but every sweep still walks the whole
///   circuit.
/// * `csim-MV-quiesce` — the same run under the engine's quiescence gate
///   (`--quiesce-window 4`); the wall-time gap against `-hold` is the
///   headline win of the gate, and the harness asserts its detections are
///   bit-identical to the ungated reference before recording the cell.
/// * `csim-MV-resume` — the gated run checkpointed at the halfway
///   boundary, round-tripped through the checkpoint's byte serialization,
///   and restored into a fresh simulator; the recorded wall time covers
///   only the resumed second half, while the work counters are the full
///   run's (the checkpoint restores them), so the drift gate pins
///   restart determinism pattern for pattern.
fn run_quiesce_cells(circuit: &Circuit, count: usize, seed: u64, repeats: usize) -> Vec<PerfRun> {
    let patterns = hold_patterns(circuit, count, seed);
    let faults = collapse_stuck_at(circuit).representatives;
    let variant = CsimVariant::Mv;
    let cell = |suffix: &str,
                wall: f64,
                events: u64,
                detected: usize,
                peak_elements: usize,
                memory_bytes: usize,
                phases: Vec<(&'static str, f64)>| PerfRun {
        circuit: circuit.name().to_owned(),
        variant: format!("{}-{suffix}", variant.name()),
        threads: 1,
        patterns: patterns.len(),
        faults: faults.len(),
        faults_full: 0,
        wall_seconds: wall,
        events,
        events_per_pattern: events as f64 / patterns.len().max(1) as f64,
        detected,
        peak_elements,
        peak_arena_bytes: peak_elements * cfs_core::Arena::ELEMENT_BYTES,
        memory_bytes,
        phase_seconds: phases,
    };

    let mut hold_statuses = Vec::new();
    let mut runs = Vec::with_capacity(3);
    for (suffix, options) in [
        ("hold", variant.options()),
        ("quiesce", gated_options(variant)),
    ] {
        let mut wall = f64::INFINITY;
        let mut events = 0u64;
        let mut detected = 0usize;
        let mut peak_elements = 0usize;
        let mut memory_bytes = 0usize;
        for _ in 0..repeats.max(1) {
            let mut sim = ConcurrentSim::new(circuit, &faults, options.clone());
            let start = Instant::now();
            let report = sim.run(&patterns);
            wall = wall.min(start.elapsed().as_secs_f64());
            events = sim.events();
            detected = sim.detected();
            peak_elements = sim.peak_elements();
            memory_bytes = sim.memory_bytes();
            if suffix == "hold" {
                hold_statuses = report.statuses;
            } else {
                assert_eq!(
                    report.statuses,
                    hold_statuses,
                    "{}: the quiescence gate changed detections",
                    circuit.name()
                );
            }
        }
        let mut sim = ConcurrentSim::instrumented(circuit, &faults, options);
        sim.run(&patterns);
        let phases = phase_seconds(&sim.snapshot());
        runs.push(cell(
            suffix,
            wall,
            events,
            detected,
            peak_elements,
            memory_bytes,
            phases,
        ));
    }

    let cut = patterns.len() / 2;
    let mut wall = f64::INFINITY;
    let mut events = 0u64;
    let mut detected = 0usize;
    let mut peak_elements = 0usize;
    let mut memory_bytes = 0usize;
    for _ in 0..repeats.max(1) {
        let mut first = ConcurrentSim::new(circuit, &faults, gated_options(variant));
        for p in &patterns[..cut] {
            first.step(p);
        }
        let bytes = first.checkpoint().to_bytes();
        drop(first);
        let snap = Checkpoint::from_bytes(&bytes).expect("checkpoint round trip");
        let mut sim = ConcurrentSim::new(circuit, &faults, gated_options(variant));
        sim.restore(&snap).expect("checkpoint restore");
        let start = Instant::now();
        for p in &patterns[cut..] {
            sim.step(p);
        }
        wall = wall.min(start.elapsed().as_secs_f64());
        assert_eq!(
            sim.statuses(),
            hold_statuses,
            "{}: resume diverged from the cold run",
            circuit.name()
        );
        events = sim.events();
        detected = sim.detected();
        peak_elements = sim.peak_elements();
        memory_bytes = sim.memory_bytes();
    }
    let phases = {
        let first = {
            let mut sim = ConcurrentSim::new(circuit, &faults, gated_options(variant));
            for p in &patterns[..cut] {
                sim.step(p);
            }
            sim.checkpoint().to_bytes()
        };
        let snap = Checkpoint::from_bytes(&first).expect("checkpoint round trip");
        let mut sim = ConcurrentSim::instrumented(circuit, &faults, gated_options(variant));
        sim.restore(&snap).expect("checkpoint restore");
        for p in &patterns[cut..] {
            sim.step(p);
        }
        phase_seconds(&sim.snapshot())
    };
    runs.push(cell(
        "resume",
        wall,
        events,
        detected,
        peak_elements,
        memory_bytes,
        phases,
    ));
    runs
}

/// Runs the whole harness: every circuit × the four stuck-at variants ×
/// every thread count (each with its `-pruned` twin, and a `-batched`
/// twin for parallel cells), plus one serial `csim-T` row, its `-pruned`
/// twin, one batched transition cell, the serial `csim-MV-learned` /
/// `csim-T-learned` cells, the two `-incremental` cells, and the
/// quiescence trio (`csim-MV-hold` / `-quiesce` / `-resume`) per
/// circuit.
pub fn run_perf(config: &PerfConfig) -> Vec<PerfRun> {
    let mut runs = Vec::new();
    for name in &config.circuits {
        let circuit = perf_circuit(name);
        let patterns = random_patterns(&circuit, config.patterns, config.seed);
        let analysis = analyze_circuit(&circuit);
        let stuck = prune_stuck_at(&circuit, &analysis);
        let transition = prune_transition(&circuit, &analysis);
        let graph = ImplicationGraph::build(&circuit, &analysis, LearnOptions::default());
        let learned_stuck = prune_stuck_at_learned(&circuit, &analysis, &graph).universe;
        let learned_transition = prune_transition_learned(&circuit, &analysis, &graph);
        for variant in CsimVariant::ALL {
            for &threads in &config.threads {
                runs.push(run_stuck(
                    &circuit,
                    variant,
                    threads,
                    &patterns,
                    config.repeats,
                ));
                runs.push(run_stuck_pruned(
                    &circuit,
                    &stuck,
                    variant,
                    threads,
                    &patterns,
                    config.repeats,
                    "-pruned",
                ));
                if threads > 1 {
                    runs.push(run_stuck_batched(
                        &circuit,
                        variant,
                        threads,
                        &patterns,
                        config.repeats,
                    ));
                }
            }
        }
        runs.push(run_stuck_pruned(
            &circuit,
            &learned_stuck,
            CsimVariant::Mv,
            1,
            &patterns,
            config.repeats,
            "-learned",
        ));
        runs.push(run_transition(&circuit, &patterns, config.repeats));
        runs.push(run_transition_pruned(
            &circuit,
            &transition,
            &patterns,
            config.repeats,
            "-pruned",
        ));
        runs.push(run_transition_pruned(
            &circuit,
            &learned_transition,
            &patterns,
            config.repeats,
            "-learned",
        ));
        if let Some(&threads) = config.threads.iter().filter(|&&t| t > 1).max() {
            runs.push(run_transition_batched(
                &circuit,
                threads,
                &patterns,
                config.repeats,
            ));
        }
        runs.push(run_stuck_incremental(&circuit, &patterns, config.repeats));
        runs.push(run_transition_incremental(
            &circuit,
            &patterns,
            config.repeats,
        ));
        runs.extend(run_quiesce_cells(
            &circuit,
            config.patterns,
            config.seed,
            config.repeats,
        ));
    }
    runs
}

fn write_run(out: &mut String, run: &PerfRun) {
    out.push_str("    {");
    out.push_str("\"circuit\": ");
    write_json_string(out, &run.circuit);
    out.push_str(", \"variant\": ");
    write_json_string(out, &run.variant);
    out.push_str(&format!(
        ", \"threads\": {}, \"patterns\": {}, \"faults\": {}, \"faults_full\": {}",
        run.threads, run.patterns, run.faults, run.faults_full
    ));
    out.push_str(", \"wall_seconds\": ");
    write_json_f64(out, run.wall_seconds);
    out.push_str(&format!(", \"events\": {}", run.events));
    out.push_str(", \"events_per_pattern\": ");
    write_json_f64(out, run.events_per_pattern);
    out.push_str(&format!(
        ", \"detected\": {}, \"peak_elements\": {}, \"peak_arena_bytes\": {}, \
         \"memory_bytes\": {}",
        run.detected, run.peak_elements, run.peak_arena_bytes, run.memory_bytes
    ));
    out.push_str(", \"phase_seconds\": {");
    for (i, (name, secs)) in run.phase_seconds.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_json_string(out, name);
        out.push_str(": ");
        write_json_f64(out, *secs);
    }
    out.push_str("}}");
}

/// Renders a harness result (and an optional embedded baseline) as the
/// `BENCH.json` document.
pub fn render_bench_json(
    config: &PerfConfig,
    runs: &[PerfRun],
    baseline: Option<(&str, &[PerfRun])>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"cfs-bench/1\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"patterns\": {}, \"repeats\": {}, \"seed\": {}, \"threads\": [{}], \
         \"circuits\": [{}]}},\n",
        config.patterns,
        config.repeats,
        config.seed,
        config
            .threads
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        config
            .circuits
            .iter()
            .map(|c| format!("{c:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        write_run(&mut out, run);
        if i + 1 < runs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]");
    if let Some((source, base_runs)) = baseline {
        out.push_str(",\n  \"baseline\": {\"source\": ");
        write_json_string(&mut out, source);
        out.push_str(", \"runs\": [\n");
        for (i, run) in base_runs.iter().enumerate() {
            write_run(&mut out, run);
            if i + 1 < base_runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]},\n  \"speedups\": [\n");
        let speedups = speedups_against(runs, base_runs);
        for (i, (key, base_wall, wall, ratio)) in speedups.iter().enumerate() {
            out.push_str("    {\"run\": ");
            write_json_string(&mut out, key);
            out.push_str(", \"baseline_wall_seconds\": ");
            write_json_f64(&mut out, *base_wall);
            out.push_str(", \"wall_seconds\": ");
            write_json_f64(&mut out, *wall);
            out.push_str(", \"speedup\": ");
            write_json_f64(&mut out, *ratio);
            out.push('}');
            if i + 1 < speedups.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Pairs current runs with baseline runs by key and computes wall-time
/// speedups (`baseline / current`; above 1.0 means the current engine is
/// faster).
pub fn speedups_against(runs: &[PerfRun], baseline: &[PerfRun]) -> Vec<(String, f64, f64, f64)> {
    runs.iter()
        .filter_map(|run| {
            let key = run.key();
            let base = baseline.iter().find(|b| b.key() == key)?;
            let ratio = if run.wall_seconds > 0.0 {
                base.wall_seconds / run.wall_seconds
            } else {
                0.0
            };
            Some((key, base.wall_seconds, run.wall_seconds, ratio))
        })
        .collect()
}

/// Reads the `runs` array of a previously written `BENCH.json` (top-level
/// runs, not the embedded baseline). Wall times load as recorded; phase
/// breakdowns are not needed for comparisons and load empty.
///
/// # Errors
///
/// Returns a description when the file is not a harness document.
pub fn parse_bench_json(input: &str) -> Result<Vec<PerfRun>, String> {
    let doc = JsonValue::parse(input)?;
    let runs = doc
        .get("runs")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "missing \"runs\" array".to_owned())?;
    let str_field = |v: &JsonValue, k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(JsonValue::as_str)
            .map(ToOwned::to_owned)
            .ok_or_else(|| format!("run missing {k:?}"))
    };
    let num_field = |v: &JsonValue, k: &str| -> Result<f64, String> {
        v.get(k)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("run missing {k:?}"))
    };
    runs.iter()
        .map(|v| {
            Ok(PerfRun {
                circuit: str_field(v, "circuit")?,
                variant: str_field(v, "variant")?,
                threads: num_field(v, "threads")? as usize,
                patterns: num_field(v, "patterns")? as usize,
                faults: num_field(v, "faults")? as usize,
                // Absent in documents written before static pruning.
                faults_full: v
                    .get("faults_full")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0) as usize,
                wall_seconds: num_field(v, "wall_seconds")?,
                events: num_field(v, "events")? as u64,
                events_per_pattern: num_field(v, "events_per_pattern")?,
                detected: num_field(v, "detected")? as usize,
                peak_elements: num_field(v, "peak_elements")? as usize,
                peak_arena_bytes: num_field(v, "peak_arena_bytes")? as usize,
                memory_bytes: num_field(v, "memory_bytes")? as usize,
                phase_seconds: Vec::new(),
            })
        })
        .collect()
}

/// Compares a fresh harness result against a checked-in baseline file's
/// runs: the deterministic work counters (`events_per_pattern`, `events`)
/// and detection counts must match exactly for every configuration present
/// in both; timing differences are advisory. Returns human-readable drift
/// descriptions (empty = pass).
pub fn check_against(runs: &[PerfRun], baseline: &[PerfRun]) -> Vec<String> {
    let mut drifts = Vec::new();
    for base in baseline {
        let key = base.key();
        let Some(run) = runs.iter().find(|r| r.key() == key) else {
            drifts.push(format!("{key}: configuration missing from this run"));
            continue;
        };
        if run.events != base.events {
            drifts.push(format!(
                "{key}: events drifted {} -> {}",
                base.events, run.events
            ));
        }
        if run.detected != base.detected {
            drifts.push(format!(
                "{key}: detections drifted {} -> {}",
                base.detected, run.detected
            ));
        }
        if run.patterns != base.patterns
            || run.faults != base.faults
            || run.faults_full != base.faults_full
        {
            drifts.push(format!(
                "{key}: workload drifted (patterns {} -> {}, faults {} -> {}, full {} -> {})",
                base.patterns,
                run.patterns,
                base.faults,
                run.faults,
                base.faults_full,
                run.faults_full
            ));
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PerfConfig {
        PerfConfig {
            circuits: vec!["s27".to_owned()],
            patterns: 8,
            threads: vec![1],
            repeats: 1,
            seed: 7,
        }
    }

    #[test]
    fn harness_round_trips_through_json() {
        let config = tiny_config();
        let runs = run_perf(&config);
        // (4 stuck-at variants × 1 thread count + csim-T) × {plain, pruned}
        // plus the two -learned cells, the two -incremental cells, and the
        // quiescence trio.
        assert_eq!(runs.len(), 17);
        let json = render_bench_json(&config, &runs, None);
        let parsed = parse_bench_json(&json).expect("own output parses");
        assert_eq!(parsed.len(), runs.len());
        for (a, b) in runs.iter().zip(&parsed) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.events, b.events);
            assert_eq!(a.detected, b.detected);
            assert_eq!(a.faults_full, b.faults_full);
        }
        assert!(check_against(&parsed, &runs).is_empty(), "self-check clean");
    }

    #[test]
    fn pruned_twins_shrink_the_simulated_universe() {
        let runs = run_perf(&tiny_config());
        let pruned: Vec<_> = runs
            .iter()
            .filter(|r| r.variant.ends_with("-pruned"))
            .collect();
        assert_eq!(pruned.len(), 5);
        for r in &pruned {
            assert!(
                r.faults_full > 0,
                "{}: twin records the full universe",
                r.key()
            );
            assert!(r.faults <= r.faults_full, "{}: sim beyond full", r.key());
            // Stuck-at twins always shrink strictly: exact collapsing alone
            // merges equivalent faults. Transition faults have no collapse,
            // so their twin only shrinks when the analyses prune something
            // (nothing on s27).
            if !r.variant.starts_with("csim-T") {
                assert!(
                    r.faults < r.faults_full,
                    "{}: simulated {} should be below full {}",
                    r.key(),
                    r.faults,
                    r.faults_full
                );
            }
        }
        // A pruned stuck-at cell reports full-universe detections: compare
        // against its plain twin expanded through classical equivalence
        // (both count the same detected fault classes on s27, where the
        // analyses prune nothing and collapses agree).
        let plain = runs.iter().find(|r| r.variant == "csim-MV").unwrap();
        let twin = runs.iter().find(|r| r.variant == "csim-MV-pruned").unwrap();
        assert!(twin.detected >= plain.detected);
    }

    #[test]
    fn learned_twins_never_exceed_their_pruned_twin() {
        let runs = run_perf(&tiny_config());
        for (learned, pruned) in [
            ("csim-MV-learned", "csim-MV-pruned"),
            ("csim-T-learned", "csim-T-pruned"),
        ] {
            let learned = runs
                .iter()
                .find(|r| r.variant == learned && r.threads == 1)
                .unwrap_or_else(|| panic!("{learned}: cell missing"));
            let pruned = runs
                .iter()
                .find(|r| r.variant == pruned && r.threads == 1)
                .unwrap();
            assert!(
                learned.faults_full > 0,
                "{}: twin records the full universe",
                learned.key()
            );
            assert_eq!(
                learned.faults_full,
                pruned.faults_full,
                "{}: same full universe as the pruned twin",
                learned.key()
            );
            assert!(
                learned.faults <= pruned.faults,
                "{}: learning never grows the universe ({} vs {})",
                learned.key(),
                learned.faults,
                pruned.faults
            );
            // Both report full-universe detections, so learning must not
            // change the detection count.
            assert_eq!(
                learned.detected,
                pruned.detected,
                "{}: conflict pruning changed detections",
                learned.key()
            );
        }
    }

    #[test]
    fn incremental_twins_match_a_cold_uncollapsed_run() {
        let config = tiny_config();
        let runs = run_perf(&config);
        let circuit = perf_circuit("s27");
        let patterns = random_patterns(&circuit, config.patterns, config.seed);
        let applied = apply_edit(&circuit, BenchEdit::DeadLogic, 0).unwrap();
        let diff = diff_netlists(&circuit, &applied.circuit, None, None);
        let analysis = impact_analysis(&circuit, &applied.circuit, diff);
        let stuck = classify_stuck_at(&circuit, &applied.circuit, &analysis);
        let transition = classify_transition(&circuit, &applied.circuit, &analysis);
        let cold_stuck =
            ConcurrentSim::new(&applied.circuit, &stuck.full, CsimVariant::Mv.options())
                .run(&patterns)
                .statuses
                .iter()
                .filter(|s| matches!(s, FaultStatus::Detected { .. }))
                .count();
        let cold_transition =
            TransitionSim::new(&applied.circuit, &transition.full, Default::default())
                .run(&patterns)
                .statuses
                .iter()
                .filter(|s| matches!(s, FaultStatus::Detected { .. }))
                .count();
        for (variant, stats, cold) in [
            ("csim-MV-incremental", &stuck.stats, cold_stuck),
            ("csim-T-incremental", &transition.stats, cold_transition),
        ] {
            let cell = runs
                .iter()
                .find(|r| r.variant == variant)
                .unwrap_or_else(|| panic!("{variant}: cell missing"));
            assert_eq!(cell.faults, stats.affected, "{variant}: simulated count");
            assert_eq!(cell.faults_full, stats.full, "{variant}: full universe");
            assert!(
                cell.faults <= cell.faults_full,
                "{variant}: sim beyond full"
            );
            assert_eq!(
                cell.detected, cold,
                "{variant}: fate transfer changed detections"
            );
        }
    }

    #[test]
    fn batched_twins_ride_parallel_cells_and_match_plain_detections() {
        let config = PerfConfig {
            threads: vec![1, 2],
            ..tiny_config()
        };
        let runs = run_perf(&config);
        let batched: Vec<_> = runs
            .iter()
            .filter(|r| r.variant.ends_with("-batched"))
            .collect();
        // One per stuck-at variant at t2, plus one transition cell.
        assert_eq!(
            batched.len(),
            5,
            "{:?}",
            batched.iter().map(|r| r.key()).collect::<Vec<_>>()
        );
        for twin in &batched {
            assert_eq!(
                twin.threads,
                2,
                "{}: batched cells are parallel",
                twin.key()
            );
            let plain_variant = twin.variant.trim_end_matches("-batched");
            // csim-T has no parallel plain cell; its reference is serial.
            let plain_threads = if plain_variant == "csim-T" { 1 } else { 2 };
            let plain = runs
                .iter()
                .find(|r| r.variant == plain_variant && r.threads == plain_threads)
                .unwrap_or_else(|| panic!("{}: no plain twin", twin.key()));
            assert_eq!(
                twin.detected,
                plain.detected,
                "{}: the 2-D schedule changed detections",
                twin.key()
            );
        }
        // Keys stay unique with the new twins in the document.
        let mut keys: Vec<String> = runs.iter().map(PerfRun::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), runs.len(), "duplicate run keys");
    }

    #[test]
    fn quiesce_trio_agrees_on_detections_and_full_run_counters() {
        let runs = run_perf(&tiny_config());
        let hold = runs.iter().find(|r| r.variant == "csim-MV-hold").unwrap();
        let quiesce = runs
            .iter()
            .find(|r| r.variant == "csim-MV-quiesce")
            .unwrap();
        let resume = runs.iter().find(|r| r.variant == "csim-MV-resume").unwrap();
        // The gate must never change what is detected (the harness also
        // asserts full status equality while recording the cells)...
        assert_eq!(quiesce.detected, hold.detected);
        // ...and a resumed run carries the full run's deterministic
        // counters, not just the second half's.
        assert_eq!(resume.detected, quiesce.detected);
        assert_eq!(resume.events, quiesce.events);
        assert_eq!(resume.peak_elements, quiesce.peak_elements);
        for r in [hold, quiesce, resume] {
            assert_eq!(r.threads, 1, "{}: trio cells are serial", r.key());
            assert!(r.peak_elements > 0, "{}: peak recorded", r.key());
        }
    }

    #[test]
    fn parallel_cells_record_the_widest_shard_peak() {
        let config = PerfConfig {
            threads: vec![1, 2],
            ..tiny_config()
        };
        let runs = run_perf(&config);
        for r in &runs {
            assert!(r.peak_elements > 0, "{}: peak never recorded", r.key());
            assert_eq!(
                r.peak_arena_bytes,
                r.peak_elements * cfs_core::Arena::ELEMENT_BYTES,
                "{}: arena bytes follow the element term",
                r.key()
            );
        }
        // A shard holds a subset of the fault universe, so its widest
        // arena never exceeds the serial engine's.
        for t2 in runs.iter().filter(|r| r.threads == 2) {
            let base = t2.variant.trim_end_matches("-batched");
            if let Some(serial) = runs.iter().find(|r| r.variant == base && r.threads == 1) {
                assert!(
                    t2.peak_elements <= serial.peak_elements,
                    "{}: shard peak {} above serial {}",
                    t2.key(),
                    t2.peak_elements,
                    serial.peak_elements
                );
            }
        }
    }

    #[test]
    fn documents_without_faults_full_still_parse() {
        let json = r#"{"schema": "cfs-bench/1", "runs": [
            {"circuit": "s27", "variant": "csim", "threads": 1, "patterns": 8,
             "faults": 32, "wall_seconds": 0.1, "events": 100,
             "events_per_pattern": 12.5, "detected": 20, "peak_elements": 5,
             "peak_arena_bytes": 80, "memory_bytes": 1000,
             "phase_seconds": {}}]}"#;
        let runs = parse_bench_json(json).expect("legacy document parses");
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].faults_full, 0);
    }

    #[test]
    fn drift_is_reported() {
        let config = tiny_config();
        let runs = run_perf(&config);
        let mut tampered = runs.clone();
        tampered[0].events += 1;
        tampered[1].detected += 1;
        let drifts = check_against(&tampered, &runs);
        assert_eq!(drifts.len(), 2, "{drifts:?}");
    }

    #[test]
    fn speedups_pair_by_key() {
        let config = tiny_config();
        let runs = run_perf(&config);
        let mut slower = runs.clone();
        for r in &mut slower {
            r.wall_seconds *= 2.0;
        }
        for (_, base, wall, ratio) in speedups_against(&runs, &slower) {
            assert!((base - 2.0 * wall).abs() < 1e-12);
            assert!((ratio - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_counters_are_stable_across_runs() {
        let config = tiny_config();
        let a = run_perf(&config);
        let b = run_perf(&config);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.events, y.events, "{}", x.key());
            assert_eq!(x.detected, y.detected, "{}", x.key());
        }
    }
}
