//! Reproduction of the paper's Tables 2–6.
//!
//! Every function regenerates one table: same rows, same quantities (CPU
//! seconds, memory megabytes, pattern counts, fault coverages). Absolute
//! numbers differ from a 1992 SPARC 2; the claims under test are the
//! *relative* ones (macro extraction and list splitting help, csim-MV is
//! competitive with or beats PROOFS on the larger circuits, stuck-at test
//! sets are poor transition tests).

use std::fmt::Write as _;

use cfs_baselines::ProofsSim;
use cfs_core::{
    ConcurrentSim, CsimVariant, MetricsSnapshot, ParallelSim, ShardPlan, TransitionOptions,
    TransitionSim,
};
use cfs_faults::{enumerate_transition, FaultSimReport};

use crate::workloads::{
    atpg_tests, circuit, deterministic_tests, fault_universe, WorkloadConfig, TABLE3_CIRCUITS,
    TABLE4_CIRCUITS, TABLE6_CIRCUITS,
};

/// One simulator measurement: CPU seconds and modeled memory in MB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Wall-clock simulation seconds.
    pub cpu_s: f64,
    /// Paper-comparable memory model, megabytes.
    pub mem_mb: f64,
    /// Faults detected.
    pub detected: usize,
}

impl Measurement {
    fn from_report(r: &FaultSimReport) -> Self {
        Measurement {
            cpu_s: r.cpu.as_secs_f64(),
            mem_mb: r.memory_megabytes(),
            detected: r.detected(),
        }
    }
}

/// Table 2: circuit statistics and the deterministic test sets.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Circuit name.
    pub name: String,
    /// Primary inputs / outputs / flip-flops / gates.
    pub stats: (usize, usize, usize, usize),
    /// Collapsed fault count.
    pub faults: usize,
    /// Test set length.
    pub patterns: usize,
    /// Stuck-at coverage of the test set (csim-MV), percent.
    pub coverage: f64,
}

/// Regenerates Table 2 over the given circuits.
pub fn table2(names: &[&str], config: &WorkloadConfig) -> Vec<Table2Row> {
    names
        .iter()
        .map(|&name| {
            let c = circuit(name, config);
            let faults = fault_universe(&c);
            let tests = deterministic_tests(&c, &faults, config);
            let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
            let report = sim.run(&tests);
            Table2Row {
                name: name.to_owned(),
                stats: (
                    c.num_inputs(),
                    c.num_outputs(),
                    c.num_dffs(),
                    c.num_comb_gates(),
                ),
                faults: faults.len(),
                patterns: tests.len(),
                coverage: report.coverage_percent(),
            }
        })
        .collect()
}

/// Formats Table 2 in the paper's layout.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2. Benchmark circuits and deterministic test sets"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>4} {:>4} {:>5} {:>6} {:>7} {:>6} {:>7}",
        "ckt", "PI", "PO", "DFF", "gates", "faults", "#ptns", "cvg%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>4} {:>4} {:>5} {:>6} {:>7} {:>6} {:>7.2}",
            r.name, r.stats.0, r.stats.1, r.stats.2, r.stats.3, r.faults, r.patterns, r.coverage
        );
    }
    out
}

/// Table 3: deterministic patterns (I) — CPU and memory of the four csim
/// variants and PROOFS on the same test sets.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Circuit name.
    pub name: String,
    /// Measurements in Table 3 column order: csim, csim-V, csim-M,
    /// csim-MV.
    pub csim: [Measurement; 4],
    /// PROOFS measurement.
    pub proofs: Measurement,
    /// Pattern count.
    pub patterns: usize,
    /// Telemetry snapshot of an instrumented csim-MV run on the same test
    /// set: events per pattern and fault-list lengths. Taken from a
    /// separate run so the timing columns stay probe-free.
    pub telemetry: MetricsSnapshot,
}

/// Regenerates Table 3 over the given circuits.
pub fn table3(names: &[&str], config: &WorkloadConfig) -> Vec<Table3Row> {
    names
        .iter()
        .map(|&name| {
            let c = circuit(name, config);
            let faults = fault_universe(&c);
            let tests = deterministic_tests(&c, &faults, config);
            let csim = CsimVariant::ALL.map(|variant| {
                let mut sim = ConcurrentSim::new(&c, &faults, variant.options());
                Measurement::from_report(&sim.run(&tests))
            });
            let mut psim = ProofsSim::new(&c, &faults);
            let proofs = Measurement::from_report(&psim.run(&tests));
            let mut instrumented =
                ConcurrentSim::instrumented(&c, &faults, CsimVariant::Mv.options());
            instrumented.run(&tests);
            Table3Row {
                name: name.to_owned(),
                csim,
                proofs,
                patterns: tests.len(),
                telemetry: instrumented.snapshot(),
            }
        })
        .collect()
}

/// Formats Table 3 in the paper's layout, extended with the telemetry
/// columns (events per pattern and mean fault-list length of csim-MV).
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3. Deterministic Patterns (I)");
    let _ = writeln!(
        out,
        "{:<10} {:>6} | {:>8} | {:>8} | {:>8} | {:>8} {:>7} {:>7} {:>7} | {:>8} {:>7}",
        "ckt",
        "#ptns",
        "csim",
        "csim-V",
        "csim-M",
        "csim-MV",
        "mem",
        "ev/pat",
        "avg |F|",
        "PROOFS",
        "mem"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>6} | {:>8} | {:>8} | {:>8} | {:>8} {:>7} {:>7} {:>7} | {:>8} {:>7}",
        "", "", "cpu s", "cpu s", "cpu s", "cpu s", "MB", "", "", "cpu s", "MB"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>6} | {:>8.3} | {:>8.3} | {:>8.3} | {:>8.3} {:>7.2} {:>7.1} {:>7.2} | {:>8.3} {:>7.2}",
            r.name,
            r.patterns,
            r.csim[0].cpu_s,
            r.csim[1].cpu_s,
            r.csim[2].cpu_s,
            r.csim[3].cpu_s,
            r.csim[3].mem_mb,
            r.telemetry.events_per_pattern,
            r.telemetry.avg_list_len,
            r.proofs.cpu_s,
            r.proofs.mem_mb
        );
    }
    out
}

/// Table 4: deterministic patterns (II) — higher-coverage ATPG tests,
/// csim-MV vs. PROOFS.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Circuit name.
    pub name: String,
    /// Pattern count.
    pub patterns: usize,
    /// Coverage of the ATPG test set, percent.
    pub coverage: f64,
    /// csim-MV measurement.
    pub csim_mv: Measurement,
    /// PROOFS measurement.
    pub proofs: Measurement,
}

/// Regenerates Table 4 over the given circuits.
pub fn table4(names: &[&str], config: &WorkloadConfig) -> Vec<Table4Row> {
    names
        .iter()
        .map(|&name| {
            let c = circuit(name, config);
            let faults = fault_universe(&c);
            let tests = atpg_tests(&c, &faults, config);
            let mut mv = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
            let mv_report = mv.run(&tests);
            let mut psim = ProofsSim::new(&c, &faults);
            let proofs = Measurement::from_report(&psim.run(&tests));
            Table4Row {
                name: name.to_owned(),
                patterns: tests.len(),
                coverage: mv_report.coverage_percent(),
                csim_mv: Measurement::from_report(&mv_report),
                proofs,
            }
        })
        .collect()
}

/// Formats Table 4 in the paper's layout.
pub fn format_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4. Deterministic Patterns (II) — ATPG test sets");
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>7} | {:>8} {:>7} | {:>8} {:>7}",
        "ckt", "#ptns", "cvg%", "csim-MV", "MEM", "PROOFS", "MEM"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>7.2} | {:>8.3} {:>7.2} | {:>8.3} {:>7.2}",
            r.name,
            r.patterns,
            r.coverage,
            r.csim_mv.cpu_s,
            r.csim_mv.mem_mb,
            r.proofs.cpu_s,
            r.proofs.mem_mb
        );
    }
    out
}

/// Table 5: random pattern simulation of the largest circuit.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Pattern count of this run.
    pub patterns: usize,
    /// Fault coverage, percent.
    pub coverage: f64,
    /// csim-MV measurement.
    pub csim_mv: Measurement,
    /// PROOFS measurement.
    pub proofs: Measurement,
}

/// Regenerates Table 5: increasing random-pattern budgets on `s35932g`.
pub fn table5(config: &WorkloadConfig) -> Vec<Table5Row> {
    let c = circuit("s35932g", config);
    let faults = fault_universe(&c);
    let budgets = [
        config.random_patterns / 4,
        config.random_patterns / 2,
        config.random_patterns,
    ];
    budgets
        .iter()
        .map(|&n| {
            let tests = cfs_atpg::random_patterns(&c, n, config.seed ^ n as u64);
            let mut mv = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
            let mv_report = mv.run(&tests);
            let mut psim = ProofsSim::new(&c, &faults);
            let proofs = Measurement::from_report(&psim.run(&tests));
            Table5Row {
                patterns: n,
                coverage: mv_report.coverage_percent(),
                csim_mv: Measurement::from_report(&mv_report),
                proofs,
            }
        })
        .collect()
}

/// Formats Table 5 in the paper's layout.
pub fn format_table5(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 5. Random Pattern Simulation (s35932g)");
    let _ = writeln!(
        out,
        "{:>6} {:>8} | {:>8} {:>7} | {:>8} {:>7}",
        "#ptns", "fltcvg%", "csim-MV", "MEM", "PROOFS", "MEM"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>8.2} | {:>8.3} {:>7.2} | {:>8.3} {:>7.2}",
            r.patterns,
            r.coverage,
            r.csim_mv.cpu_s,
            r.csim_mv.mem_mb,
            r.proofs.cpu_s,
            r.proofs.mem_mb
        );
    }
    out
}

/// Table 6: transition fault coverage of the stuck-at test sets.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Circuit name.
    pub name: String,
    /// Transition fault count.
    pub faults: usize,
    /// Memory, MB.
    pub mem_mb: f64,
    /// CPU seconds.
    pub cpu_s: f64,
    /// Transition fault coverage, percent.
    pub coverage: f64,
    /// Stuck-at coverage of the same test set (for the paper's point that
    /// stuck-at tests are poor transition tests).
    pub stuck_at_coverage: f64,
}

/// Regenerates Table 6 over the given circuits.
pub fn table6(names: &[&str], config: &WorkloadConfig) -> Vec<Table6Row> {
    names
        .iter()
        .map(|&name| {
            let c = circuit(name, config);
            let sa_faults = fault_universe(&c);
            let tests = deterministic_tests(&c, &sa_faults, config);
            let mut sa = ConcurrentSim::new(&c, &sa_faults, CsimVariant::Mv.options());
            let sa_report = sa.run(&tests);
            let tfaults = enumerate_transition(&c);
            let mut tsim = TransitionSim::new(&c, &tfaults, TransitionOptions::default());
            let report = tsim.run(&tests);
            Table6Row {
                name: name.to_owned(),
                faults: tfaults.len(),
                mem_mb: report.memory_megabytes(),
                cpu_s: report.cpu.as_secs_f64(),
                coverage: report.coverage_percent(),
                stuck_at_coverage: sa_report.coverage_percent(),
            }
        })
        .collect()
}

/// Formats Table 6 in the paper's layout.
pub fn format_table6(rows: &[Table6Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6. Transition Fault Simulation (stuck-at test sets)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>7} {:>8} {:>9} {:>9}",
        "ckt", "#flts", "MEM", "CPU s", "flt cvg%", "(sa cvg%)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>7.2} {:>8.3} {:>9.2} {:>9.2}",
            r.name, r.faults, r.mem_mb, r.cpu_s, r.coverage, r.stuck_at_coverage
        );
    }
    out
}

/// Thread counts of the parallel speedup table.
pub const PARALLEL_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Parallel speedup table (no 1992 counterpart): fault-sharded csim-MV on
/// the largest circuit at increasing thread counts.
#[derive(Debug, Clone)]
pub struct TableParallelRow {
    /// Worker thread count.
    pub threads: usize,
    /// csim-MV measurement at this thread count.
    pub csim_mv: Measurement,
    /// Wall-clock speedup over the 1-thread row of the same table.
    pub speedup: f64,
}

/// Regenerates the parallel speedup table: random patterns on `name`
/// (scaled per `config`), csim-MV sharded round-robin across
/// [`PARALLEL_THREADS`]. Every row must detect the same faults — the
/// determinism guarantee — which [`table_parallel`] asserts.
pub fn table_parallel(name: &str, config: &WorkloadConfig) -> Vec<TableParallelRow> {
    let c = circuit(name, config);
    let faults = fault_universe(&c);
    let tests = cfs_atpg::random_patterns(&c, config.random_patterns, config.seed);
    let mut rows: Vec<TableParallelRow> = Vec::new();
    let mut serial_statuses = None;
    for threads in PARALLEL_THREADS {
        let mut sim = ParallelSim::new(
            &c,
            &faults,
            CsimVariant::Mv.options(),
            threads,
            ShardPlan::RoundRobin,
        );
        let report = sim.run(&tests);
        match &serial_statuses {
            None => serial_statuses = Some(report.statuses.clone()),
            Some(reference) => assert_eq!(
                reference, &report.statuses,
                "{threads}-thread run diverged from serial"
            ),
        }
        let m = Measurement::from_report(&report);
        let speedup = rows.first().map_or(1.0, |r| r.csim_mv.cpu_s / m.cpu_s);
        rows.push(TableParallelRow {
            threads,
            csim_mv: m,
            speedup,
        });
    }
    rows
}

/// Formats the parallel speedup table.
pub fn format_table_parallel(name: &str, rows: &[TableParallelRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table P. Fault-Sharded Parallel Simulation ({name})");
    let _ = writeln!(
        out,
        "{:>8} | {:>8} {:>7} {:>8}",
        "threads", "csim-MV", "MEM", "speedup"
    );
    let _ = writeln!(out, "{:>8} | {:>8} {:>7} {:>8}", "", "cpu s", "MB", "x");
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} | {:>8.3} {:>7.2} {:>8.2}",
            r.threads, r.csim_mv.cpu_s, r.csim_mv.mem_mb, r.speedup
        );
    }
    out
}

/// Convenience: regenerates and formats every table with the same circuit
/// selections as the paper.
pub fn all_tables(config: &WorkloadConfig) -> String {
    let mut out = String::new();
    out.push_str(&format_table2(&table2(TABLE3_CIRCUITS, config)));
    out.push('\n');
    out.push_str(&format_table3(&table3(TABLE3_CIRCUITS, config)));
    out.push('\n');
    out.push_str(&format_table4(&table4(TABLE4_CIRCUITS, config)));
    out.push('\n');
    out.push_str(&format_table5(&table5(config)));
    out.push('\n');
    out.push_str(&format_table6(&table6(TABLE6_CIRCUITS, config)));
    out.push('\n');
    out.push_str(&format_table_parallel(
        "s35932g",
        &table_parallel("s35932g", config),
    ));
    out
}

/// One-line summary of who wins, for smoke tests and the README.
pub fn headline(rows3: &[Table3Row]) -> String {
    let mut faster = 0usize;
    for r in rows3 {
        if r.csim[3].cpu_s <= r.proofs.cpu_s {
            faster += 1;
        }
    }
    format!(
        "csim-MV beats or ties PROOFS on {}/{} circuits",
        faster,
        rows3.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table3_has_consistent_detections() {
        let cfg = WorkloadConfig::quick();
        let rows = table3(&["s298g", "s386g"], &cfg);
        for r in &rows {
            // All four variants and PROOFS agree on detection counts.
            let d = r.csim[0].detected;
            assert!(r.csim.iter().all(|m| m.detected == d), "{}", r.name);
            assert_eq!(r.proofs.detected, d, "{}", r.name);
            // The instrumented re-run agrees and fills the telemetry columns.
            assert_eq!(r.telemetry.detected as usize, d, "{}", r.name);
            assert!(r.telemetry.avg_list_len > 0.0, "{}", r.name);
            assert!(r.telemetry.events_per_pattern > 0.0, "{}", r.name);
        }
        let s = format_table3(&rows);
        assert!(s.contains("s298g"));
        assert!(s.contains("ev/pat"));
        assert!(s.contains("avg |F|"));
    }

    #[test]
    fn quick_table6_runs() {
        let cfg = WorkloadConfig::quick();
        let rows = table6(&["s298g"], &cfg);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].faults > 0);
        assert!(format_table6(&rows).contains("s298g"));
    }

    #[test]
    fn table_parallel_rows_agree_and_report_speedup() {
        let mut cfg = WorkloadConfig::quick();
        cfg.random_patterns = 64;
        let rows = table_parallel("s1423g", &cfg);
        assert_eq!(rows.len(), PARALLEL_THREADS.len());
        // table_parallel itself asserts status equality; check the derived
        // columns here.
        let d = rows[0].csim_mv.detected;
        assert!(rows.iter().all(|r| r.csim_mv.detected == d));
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        assert!(rows.iter().all(|r| r.speedup > 0.0));
        let s = format_table_parallel("s1423g", &rows);
        assert!(s.contains("speedup"), "{s}");
        assert!(s.contains("s1423g"), "{s}");
    }

    #[test]
    fn table5_coverage_is_monotone_in_patterns() {
        let mut cfg = WorkloadConfig::quick();
        cfg.random_patterns = 64;
        let rows = table5(&cfg);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].coverage <= rows[2].coverage + 1e-9);
    }
}
