//! Criterion benches: one group per paper table, timing the simulator
//! kernels on fixed workloads (Tables 3–6 measure exactly these calls; the
//! `repro-tables` binary prints the full rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cfs_baselines::ProofsSim;
use cfs_bench::workloads::{circuit, deterministic_tests, fault_universe, WorkloadConfig};
use cfs_core::{ConcurrentSim, CsimVariant, TransitionOptions, TransitionSim};
use cfs_faults::enumerate_transition;

const CIRCUITS: &[&str] = &["s298g", "s526g", "s1196g"];

/// Table 3 kernel: each csim variant and PROOFS on the deterministic sets.
fn bench_table3(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for &name in CIRCUITS {
        let ckt = circuit(name, &cfg);
        let faults = fault_universe(&ckt);
        let tests = deterministic_tests(&ckt, &faults, &cfg);
        for variant in CsimVariant::ALL {
            group.bench_with_input(
                BenchmarkId::new(variant.name(), name),
                &(&ckt, &faults, &tests),
                |b, (ckt, faults, tests)| {
                    b.iter(|| {
                        let mut sim = ConcurrentSim::new(ckt, faults, variant.options());
                        sim.run(tests).detected()
                    })
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("proofs", name),
            &(&ckt, &faults, &tests),
            |b, (ckt, faults, tests)| {
                b.iter(|| {
                    let mut sim = ProofsSim::new(ckt, faults);
                    sim.run(tests).detected()
                })
            },
        );
    }
    group.finish();
}

/// Table 5 kernel: random-pattern simulation of the (scaled) largest
/// circuit, csim-MV vs. PROOFS.
fn bench_table5(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick();
    let ckt = circuit("s35932g", &cfg);
    let faults = fault_universe(&ckt);
    let tests = cfs_atpg::random_patterns(&ckt, 64, 7);
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("csim-MV/s35932g-scaled", |b| {
        b.iter(|| {
            let mut sim = ConcurrentSim::new(&ckt, &faults, CsimVariant::Mv.options());
            sim.run(&tests).detected()
        })
    });
    group.bench_function("proofs/s35932g-scaled", |b| {
        b.iter(|| {
            let mut sim = ProofsSim::new(&ckt, &faults);
            sim.run(&tests).detected()
        })
    });
    group.finish();
}

/// Table 6 kernel: transition fault simulation over the same test sets.
fn bench_table6(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick();
    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    for &name in &["s298g", "s526g"] {
        let ckt = circuit(name, &cfg);
        let sa = fault_universe(&ckt);
        let tests = deterministic_tests(&ckt, &sa, &cfg);
        let tfaults = enumerate_transition(&ckt);
        group.bench_with_input(
            BenchmarkId::new("csim-T", name),
            &(&ckt, &tfaults, &tests),
            |b, (ckt, tfaults, tests)| {
                b.iter(|| {
                    let mut sim = TransitionSim::new(ckt, tfaults, TransitionOptions::default());
                    sim.run(tests).detected()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3, bench_table5, bench_table6);
criterion_main!(benches);
