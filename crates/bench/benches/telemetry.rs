//! Telemetry overhead bench: the same csim-MV workload with the probe
//! absent (`NullProbe`, the default), with the recording `SimMetrics`
//! probe attached, and with the event-level `TraceRecorder` attached.
//!
//! The `off` timing is the acceptance check for the zero-cost claim: the
//! probe-free engine is monomorphized over `NullProbe`, whose methods are
//! empty `#[inline]` bodies, and every costful sweep is gated behind
//! `P::ENABLED`, so `telemetry/off` must match the pre-instrumentation
//! engine (within noise; the `on` and `trace` rows show what each probe
//! itself costs — `trace` is the full `--trace-out` recorder with its
//! default 1 Mi-event ring).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cfs_bench::workloads::{circuit, deterministic_tests, fault_universe, WorkloadConfig};
use cfs_core::{ConcurrentSim, CsimVariant};
use cfs_trace::{TraceConfig, TraceRecorder};

const CIRCUITS: &[&str] = &["s298g", "s1196g"];

fn bench_overhead(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick();
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(20);
    for &name in CIRCUITS {
        let ckt = circuit(name, &cfg);
        let faults = fault_universe(&ckt);
        let tests = deterministic_tests(&ckt, &faults, &cfg);
        group.bench_with_input(
            BenchmarkId::new("off", name),
            &(&ckt, &faults, &tests),
            |b, (ckt, faults, tests)| {
                b.iter(|| {
                    let mut sim = ConcurrentSim::new(ckt, faults, CsimVariant::Mv.options());
                    sim.run(tests).detected()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("on", name),
            &(&ckt, &faults, &tests),
            |b, (ckt, faults, tests)| {
                b.iter(|| {
                    let mut sim =
                        ConcurrentSim::instrumented(ckt, faults, CsimVariant::Mv.options());
                    sim.run(tests).detected()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("trace", name),
            &(&ckt, &faults, &tests),
            |b, (ckt, faults, tests)| {
                b.iter(|| {
                    let probe = TraceRecorder::new(Instant::now(), TraceConfig::default());
                    let mut sim =
                        ConcurrentSim::with_probe(ckt, faults, CsimVariant::Mv.options(), probe);
                    sim.run(tests).detected()
                })
            },
        );
    }
    group.finish();
}

/// Advisory ceiling on the full-recorder slowdown: tracing is expected to
/// cost real time (it writes an event per divergence/convergence/drop),
/// but a ratio past this means the recorder leaked work onto a path the
/// probe gating should have kept clean. Advisory only — printed, never
/// failing — because absolute timings vary too much across CI machines.
const TRACE_OVERHEAD_ADVISORY: f64 = 2.0;

fn trace_overhead_advisory(_c: &mut Criterion) {
    let cfg = WorkloadConfig::quick();
    let ckt = circuit("s298g", &cfg);
    let faults = fault_universe(&ckt);
    let tests = deterministic_tests(&ckt, &faults, &cfg);
    let best_of = |traced: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..10 {
            let start = Instant::now();
            if traced {
                let probe = TraceRecorder::new(Instant::now(), TraceConfig::default());
                let mut sim =
                    ConcurrentSim::with_probe(&ckt, &faults, CsimVariant::Mv.options(), probe);
                sim.run(&tests);
            } else {
                let mut sim = ConcurrentSim::new(&ckt, &faults, CsimVariant::Mv.options());
                sim.run(&tests);
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let off = best_of(false);
    let on = best_of(true);
    let ratio = on / off;
    println!(
        "telemetry/advisory  trace-on {:.3} ms / probe-off {:.3} ms = {ratio:.2}x (threshold {TRACE_OVERHEAD_ADVISORY:.1}x)",
        on * 1e3,
        off * 1e3,
    );
    if ratio > TRACE_OVERHEAD_ADVISORY {
        eprintln!(
            "# advisory: trace overhead {ratio:.2}x exceeds {TRACE_OVERHEAD_ADVISORY:.1}x — \
             check that recording stayed off the probe-gated paths"
        );
    }
}

criterion_group!(benches, bench_overhead, trace_overhead_advisory);
criterion_main!(benches);
