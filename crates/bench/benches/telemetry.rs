//! Telemetry overhead bench: the same csim-MV workload with the probe
//! absent (`NullProbe`, the default) and with the recording `SimMetrics`
//! probe attached.
//!
//! The `off` timing is the acceptance check for the zero-cost claim: the
//! probe-free engine is monomorphized over `NullProbe`, whose methods are
//! empty `#[inline]` bodies, and every costful sweep is gated behind
//! `P::ENABLED`, so `telemetry/off` must match the pre-instrumentation
//! engine (within noise; the `on` row shows what the probe itself costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cfs_bench::workloads::{circuit, deterministic_tests, fault_universe, WorkloadConfig};
use cfs_core::{ConcurrentSim, CsimVariant};

const CIRCUITS: &[&str] = &["s298g", "s1196g"];

fn bench_overhead(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick();
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(20);
    for &name in CIRCUITS {
        let ckt = circuit(name, &cfg);
        let faults = fault_universe(&ckt);
        let tests = deterministic_tests(&ckt, &faults, &cfg);
        group.bench_with_input(
            BenchmarkId::new("off", name),
            &(&ckt, &faults, &tests),
            |b, (ckt, faults, tests)| {
                b.iter(|| {
                    let mut sim = ConcurrentSim::new(ckt, faults, CsimVariant::Mv.options());
                    sim.run(tests).detected()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("on", name),
            &(&ckt, &faults, &tests),
            |b, (ckt, faults, tests)| {
                b.iter(|| {
                    let mut sim =
                        ConcurrentSim::instrumented(ckt, faults, CsimVariant::Mv.options());
                    sim.run(tests).detected()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
