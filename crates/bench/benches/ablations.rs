//! Ablation benches for the design choices §2.2 calls out: macro input
//! cap, visible/invisible list splitting, and event-driven fault dropping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cfs_bench::workloads::{circuit, deterministic_tests, fault_universe, WorkloadConfig};
use cfs_core::{ConcurrentSim, CsimOptions, CsimVariant};

/// Macro support cap sweep: larger macros collapse more gates (fewer
/// events, fewer elements) but cost exponentially bigger LUTs.
fn bench_macro_cap(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick();
    let ckt = circuit("s1196g", &cfg);
    let faults = fault_universe(&ckt);
    let tests = deterministic_tests(&ckt, &faults, &cfg);
    let mut group = c.benchmark_group("ablation-macro-cap");
    group.sample_size(10);
    for cap in [2usize, 4, 7, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut sim = ConcurrentSim::new(
                    &ckt,
                    &faults,
                    CsimOptions {
                        macro_max_inputs: cap,
                        ..CsimVariant::Mv.options()
                    },
                );
                sim.run(&tests).detected()
            })
        });
    }
    group.finish();
}

/// List splitting on/off at gate level (csim vs csim-V).
fn bench_split(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick();
    let ckt = circuit("s1196g", &cfg);
    let faults = fault_universe(&ckt);
    let tests = deterministic_tests(&ckt, &faults, &cfg);
    let mut group = c.benchmark_group("ablation-split");
    group.sample_size(10);
    for (label, split) in [("combined", false), ("split", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut sim = ConcurrentSim::new(
                    &ckt,
                    &faults,
                    CsimOptions {
                        split_invisible: split,
                        ..CsimVariant::Base.options()
                    },
                );
                sim.run(&tests).detected()
            })
        });
    }
    group.finish();
}

/// Event-driven fault dropping on/off.
fn bench_dropping(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick();
    let ckt = circuit("s526g", &cfg);
    let faults = fault_universe(&ckt);
    let tests = deterministic_tests(&ckt, &faults, &cfg);
    let mut group = c.benchmark_group("ablation-dropping");
    group.sample_size(10);
    for (label, drop) in [("drop", true), ("keep", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut sim = ConcurrentSim::new(
                    &ckt,
                    &faults,
                    CsimOptions {
                        drop_detected: drop,
                        ..CsimVariant::Mv.options()
                    },
                );
                sim.run(&tests).detected()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_macro_cap, bench_split, bench_dropping);
criterion_main!(benches);
