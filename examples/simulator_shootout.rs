//! Runs every simulator in the workspace on the same circuit and test set
//! and prints a mini Table 3 row: the four csim variants, PROOFS, the
//! deductive method, and the serial oracle — all agreeing on detections.
//!
//! ```text
//! cargo run --release --example simulator_shootout [circuit] [patterns]
//! ```

use std::time::Instant;

use cfs::atpg::random_patterns;
use cfs::baselines::{DeductiveSim, ProofsSim, SerialSim};
use cfs::core_sim::{ConcurrentSim, CsimVariant};
use cfs::faults::collapse_stuck_at;
use cfs::logic::Logic;
use cfs::netlist::generate::benchmark;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "s526g".to_owned());
    let count: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(200);
    let circuit = benchmark(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}; try s298g, s526g, s1196g, …");
        std::process::exit(2);
    });
    println!("circuit: {circuit}");
    let faults = collapse_stuck_at(&circuit).representatives;
    let patterns = random_patterns(&circuit, count, 7);
    println!(
        "workload: {} collapsed faults × {} random patterns\n",
        faults.len(),
        patterns.len()
    );
    println!(
        "{:<12} {:>10} {:>10} {:>9}",
        "simulator", "detected", "cpu ms", "mem KB"
    );

    let mut reference: Option<usize> = None;
    for variant in CsimVariant::ALL {
        let mut sim = ConcurrentSim::new(&circuit, &faults, variant.options());
        let report = sim.run(&patterns);
        print_row(
            variant.name(),
            report.detected(),
            report.cpu.as_secs_f64(),
            report.memory_bytes,
        );
        check(&mut reference, report.detected(), variant.name());
    }
    {
        let mut sim = ProofsSim::new(&circuit, &faults);
        let report = sim.run(&patterns);
        print_row(
            "proofs",
            report.detected(),
            report.cpu.as_secs_f64(),
            report.memory_bytes,
        );
        check(&mut reference, report.detected(), "proofs");
    }
    {
        // The deductive method needs a binary start: give every simulator's
        // *detection count* context by rerunning from reset for this row.
        let reset = vec![Logic::Zero; circuit.num_dffs()];
        let start = Instant::now();
        let report = DeductiveSim::new(&circuit, &faults, reset)
            .run(&patterns)
            .expect("binary patterns");
        print_row(
            "deductive*",
            report.detected(),
            start.elapsed().as_secs_f64(),
            report.memory_bytes,
        );
    }
    {
        let sim = SerialSim::new(&circuit, &faults);
        let report = sim.run(&patterns);
        print_row(
            "serial",
            report.detected(),
            report.cpu.as_secs_f64(),
            report.memory_bytes,
        );
        check(&mut reference, report.detected(), "serial");
    }
    println!("\n(*) deductive runs from the all-zero reset state, the others from all-X.");
}

fn print_row(name: &str, detected: usize, cpu_s: f64, mem: usize) {
    println!(
        "{:<12} {:>10} {:>10.1} {:>9}",
        name,
        detected,
        cpu_s * 1e3,
        mem / 1024
    );
}

fn check(reference: &mut Option<usize>, detected: usize, who: &str) {
    match reference {
        None => *reference = Some(detected),
        Some(r) => assert_eq!(*r, detected, "{who} disagrees with the other simulators"),
    }
}
