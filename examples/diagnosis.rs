//! Cause-of-failure diagnosis with a fault dictionary: a "defective chip"
//! (a randomly injected stuck-at fault) fails on the tester; the dictionary
//! built by fault simulation ranks the candidate defect locations.
//!
//! ```text
//! cargo run --release --example diagnosis [circuit] [seed]
//! ```

use cfs::atpg::random_patterns;
use cfs::baselines::{FaultDictionary, FaultySim};
use cfs::faults::enumerate_stuck_at;
use cfs::netlist::generate::benchmark;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "s386g".to_owned());
    let seed: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(2026);
    let circuit = benchmark(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}");
        std::process::exit(2);
    });
    println!("circuit: {circuit}");

    let faults = enumerate_stuck_at(&circuit);
    let patterns = random_patterns(&circuit, 96, seed);

    // The tester's view: the defective chip is one of the modeled faults,
    // but we pretend not to know which. Scan from a seed-derived start for
    // a defect this test set actually catches.
    let mut culprit = (seed as usize * 7919) % faults.len();
    let mut observed = Vec::new();
    for attempt in 0..faults.len() {
        let candidate = (culprit + attempt) % faults.len();
        let mut good = FaultySim::new(&circuit, None);
        let mut defective = FaultySim::new(&circuit, Some(faults[candidate]));
        observed.clear();
        for (t, p) in patterns.iter().enumerate() {
            let g = good.step(p);
            let d = defective.step(p);
            for (k, (&dv, &gv)) in d.iter().zip(&g).enumerate() {
                if dv.detectably_differs(gv) {
                    observed.push((t as u32, k as u16));
                }
            }
        }
        if !observed.is_empty() {
            culprit = candidate;
            break;
        }
    }
    println!(
        "defective chip fails {} times across {} patterns",
        observed.len(),
        patterns.len()
    );
    if observed.is_empty() {
        println!("the defect is not detected by this test set; nothing to diagnose");
        return;
    }

    // Build the dictionary (one full fault simulation, no dropping).
    let dict = FaultDictionary::build(&circuit, &faults, &patterns);
    println!(
        "dictionary: {} faults, {} entries, diagnostic resolution {:.1}%",
        dict.num_faults(),
        dict.num_entries(),
        100.0 * dict.resolution()
    );

    let ranked = dict.diagnose(&observed);
    println!("top candidates:");
    for (rank, (fi, score)) in ranked.iter().take(5).enumerate() {
        let marker = if *fi == culprit {
            "  ← injected defect"
        } else {
            ""
        };
        println!(
            "  {}. {:<40} match {:.3}{}",
            rank + 1,
            faults[*fi].describe(&circuit),
            score,
            marker
        );
    }
    let rank = ranked
        .iter()
        .position(|&(fi, _)| fi == culprit)
        .expect("culprit has a matching signature");
    let (_, top_score) = ranked[0];
    let (_, culprit_score) = ranked[rank];
    assert!(
        (culprit_score - top_score).abs() < 1e-12,
        "the injected defect must tie the best score (indistinguishable class)"
    );
    println!(
        "\ninjected defect ranked #{} (score {:.3})",
        rank + 1,
        culprit_score
    );
}
