//! Arbitrary-delay simulation: the mode concurrent simulation is prized
//! for in industry (§1 of the paper). Shows a static hazard producing a
//! glitch that zero-delay simulation cannot see, and clocked operation of
//! a sequential circuit under per-gate delays.
//!
//! ```text
//! cargo run --example delay_simulation
//! ```

use cfs::goodsim::{DelayModel, DelaySim, ZeroDelaySim};
use cfs::logic::{parse_pattern, Logic};
use cfs::netlist::{data::s27, parse_bench};

fn main() {
    hazard_demo();
    clocked_demo();
}

/// y = OR(a, NOT(a)) is constant 1 in zero-delay logic, but a slow inverter
/// exposes a 0-glitch on the falling edge of `a`.
fn hazard_demo() {
    println!("— static-1 hazard under arbitrary delays —");
    let c = parse_bench("hz", "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n")
        .expect("hazard netlist");
    let delays = DelayModel::from_fn(&c, |id| if c.gate(id).name() == "n" { 5 } else { 1 });
    let mut sim = DelaySim::new(&c, delays);
    let y = c.find("y").expect("signal y");

    sim.set_input(0, Logic::One);
    sim.run_until_quiet(100).expect("settles");
    let before = sim.transitions(y);
    sim.set_input(0, Logic::Zero);
    sim.run_until_quiet(100).expect("settles");
    println!(
        "  falling edge on a: y made {} transitions (glitch!), final value {}",
        sim.transitions(y) - before,
        sim.value(y)
    );
}

/// Clocked operation of s27 with unit delays vs. the zero-delay model.
fn clocked_demo() {
    println!("— clocked s27: arbitrary-delay vs. zero-delay —");
    let c = s27();
    let mut dsim = DelaySim::new(&c, DelayModel::unit(&c));
    let mut zsim = ZeroDelaySim::new(&c);
    let sequence = ["0000", "1111", "0101", "0011"];
    for (t, pat) in sequence.iter().enumerate() {
        let p = parse_pattern(pat).expect("pattern");
        // Arbitrary-delay: apply inputs, let the network settle, sample,
        // then clock the flip-flops.
        dsim.set_inputs(&p);
        let settled_at = dsim.run_until_quiet(1_000).expect("settles");
        let dout = dsim.value(c.outputs()[0]);
        dsim.clock();
        dsim.run_until_quiet(1_000).expect("clock-to-q settles");
        // Zero-delay: one step per cycle.
        let zout = zsim.step(&p)[0];
        println!(
            "  cycle {t}: inputs {pat} → delay-sim PO {dout} (settled t={settled_at}), zero-delay PO {zout}"
        );
        assert_eq!(dout, zout, "steady-state values agree");
    }
    println!("  events processed by the delay simulator: {}", dsim.events);
}
