//! Quickstart: fault-simulate the ISCAS-89 `s27` benchmark.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cfs::atpg::random_patterns;
use cfs::core_sim::{ConcurrentSim, CsimVariant};
use cfs::faults::collapse_stuck_at;
use cfs::netlist::data::s27;

fn main() {
    // 1. A circuit: the embedded s27, or parse your own `.bench` file with
    //    `cfs::netlist::parse_bench`.
    let circuit = s27();
    println!("circuit: {circuit}");

    // 2. A fault universe: the collapsed single stuck-at faults.
    let faults = collapse_stuck_at(&circuit).representatives;
    println!("faults:  {} collapsed stuck-at", faults.len());

    // 3. A test sequence: 64 random patterns (see `cfs::atpg` for real
    //    test generation).
    let patterns = random_patterns(&circuit, 64, 42);

    // 4. The concurrent fault simulator, in its best configuration
    //    (csim-MV: macro extraction + visible/invisible list splitting).
    let mut sim = ConcurrentSim::new(&circuit, &faults, CsimVariant::Mv.options());
    let report = sim.run(&patterns);

    println!("result:  {report}");
    for (i, status) in report.statuses.iter().enumerate().take(5) {
        println!("         {} → {status}", faults[i].describe(&circuit));
    }
    println!(
        "         peak fault elements: {}, events: {}",
        sim.peak_elements(),
        report.events
    );
}
