//! Walks through the paper's four figures as executable scenarios:
//!
//! * Figure 1 — divergence and convergence of fault elements,
//! * Figure 2 — the fault list / descriptor / terminal element structure,
//! * Figure 3 — macro extraction collapsing three gates into one cell,
//! * Figure 4 — transition fault detection with a sensitizing sequence.
//!
//! ```text
//! cargo run --example paper_figures
//! ```

use cfs::core_sim::{
    Arena, ConcurrentSim, CsimOptions, CsimVariant, ListBuilder, TransitionOptions, TransitionSim,
};
use cfs::faults::{Edge, StuckAt, TransitionFault};
use cfs::logic::{parse_pattern, Logic};
use cfs::netlist::{extract_macros, parse_bench};

fn main() {
    figure1();
    figure2();
    figure3();
    figure4();
}

/// Figure 1: the faulty machine is explicit only where it differs.
fn figure1() {
    println!("— Figure 1: divergence and convergence —");
    let c = parse_bench(
        "fig1",
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(g3)\nOUTPUT(g4)\n\
         g1 = AND(a, b)\ng2 = OR(b, c)\ng3 = BUF(g1)\ng4 = AND(g1, g2)\n",
    )
    .expect("figure 1 netlist");
    let b = c.find("b").expect("signal b");
    // Fault f: b stuck-at-1 — explicit at G1 *and* G2 when b=0.
    let fault = StuckAt::output(b, true);
    let mut sim = ConcurrentSim::new(
        &c,
        &[fault],
        CsimOptions {
            drop_detected: false,
            ..CsimVariant::Base.options()
        },
    );
    let r = sim.step(&parse_pattern("100").expect("pattern"));
    println!(
        "  a=1 b=0 c=0: outputs {:?}, fault detected: {}, live elements: {}",
        r.outputs,
        !r.new_detections.is_empty(),
        sim.live_elements()
    );
    let r = sim.step(&parse_pattern("000").expect("pattern"));
    println!(
        "  a=0 b=0 c=0: fault converges at G1 but remains via G2 → live elements: {} (detections now: {})",
        sim.live_elements(),
        r.new_detections.len()
    );
}

/// Figure 2: each list element is (fault id, local state); lists are
/// contiguous runs ending at a terminal element so no end-of-list checks
/// are needed.
fn figure2() {
    println!("— Figure 2: the fault list data structure —");
    let mut arena = Arena::new();
    let mut list = ListBuilder::new();
    list.push(&mut arena, 4, Logic::One); // "fault E: input 2 of gate e stuck at 0"
    list.push(&mut arena, 6, Logic::Zero); // "fault G: output of gate g stuck at 0"
    let head = list.finish(&mut arena);
    print!("  gate list:");
    for (fault, value) in arena.iter_list(head) {
        print!(" [fault {fault}, value {value}]");
    }
    println!(" → terminal (fault id u32::MAX, never dropped)");
    println!(
        "  live elements: {}, element size: {} bytes",
        arena.live(),
        Arena::ELEMENT_BYTES
    );
}

/// Figure 3: three gates, one macro evaluation.
fn figure3() {
    println!("— Figure 3: macro extraction —");
    let c = parse_bench(
        "fig3",
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
         g1 = AND(a, b)\ng2 = NOT(g1)\ny = OR(g2, c)\n",
    )
    .expect("figure 3 netlist");
    let m = extract_macros(&c, 7);
    let cell = &m.cells()[0];
    println!(
        "  {} gates collapsed into {} cell ({} inputs, {}-entry 3-valued LUT)",
        c.num_comb_gates(),
        m.num_cells(),
        cell.support().len(),
        3usize.pow(cell.support().len() as u32),
    );
    println!(
        "  eval(1,1,0) = {}   eval(0,1,0) = {}",
        cell.eval(&[Logic::One, Logic::One, Logic::Zero]),
        cell.eval(&[Logic::Zero, Logic::One, Logic::Zero]),
    );
}

/// Figure 4: a 0→1 transition fault needs the 01 sequence with the other
/// AND input sensitized through the flip-flop.
fn figure4() {
    println!("— Figure 4: transition fault detection —");
    let c = parse_bench(
        "fig4",
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(b)\ny = AND(a, q)\n",
    )
    .expect("figure 4 netlist");
    let y = c.find("y").expect("signal y");
    let fault = TransitionFault::new(y, 0, Edge::Rise);
    println!("  fault: {}", fault.describe(&c));
    let mut sim = TransitionSim::new(&c, &[fault], TransitionOptions::default());
    let d1 = sim.step(&parse_pattern("01").expect("pattern"));
    let d2 = sim.step(&parse_pattern("11").expect("pattern"));
    println!(
        "  cycle 0 (a=0): detections {:?}; cycle 1 (a=1, q=1): detections {:?}",
        d1, d2
    );
    println!("  → the delayed rise holds the AND input at 0 while the good machine outputs 1");
}
