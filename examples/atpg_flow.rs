//! A complete test generation flow: random phase, PODEM over time-frame
//! windows, collateral fault dropping, tail trimming — then a transition
//! fault simulation of the resulting stuck-at test set (the paper's Table 6
//! point: stuck-at tests are poor transition tests).
//!
//! ```text
//! cargo run --release --example atpg_flow [circuit]
//! ```

use cfs::atpg::{generate_tests, AtpgOptions};
use cfs::core_sim::{TransitionOptions, TransitionSim};
use cfs::faults::{collapse_stuck_at, enumerate_transition};
use cfs::netlist::generate::benchmark;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s386g".to_owned());
    let circuit = benchmark(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}");
        std::process::exit(2);
    });
    println!("circuit: {circuit}");
    let faults = collapse_stuck_at(&circuit).representatives;

    let outcome = generate_tests(
        &circuit,
        &faults,
        AtpgOptions {
            max_frames: 6,
            backtrack_limit: 500,
            random_patterns: 128,
            ..Default::default()
        },
    );
    println!("stuck-at ATPG: {outcome}");
    println!(
        "  {} detected / {} faults in {} cycles",
        outcome.report.detected(),
        outcome.report.total_faults(),
        outcome.patterns.len()
    );

    // How good is this stuck-at test set at catching gross delay defects?
    let tfaults = enumerate_transition(&circuit);
    let mut tsim = TransitionSim::new(&circuit, &tfaults, TransitionOptions::default());
    let treport = tsim.run(&outcome.patterns);
    println!(
        "transition fault coverage of the same sequence: {:.2}% of {} faults",
        treport.coverage_percent(),
        tfaults.len()
    );
    println!(
        "  (stuck-at coverage was {:.2}% — the paper's Table 6 gap)",
        outcome.report.coverage_percent()
    );
}
