//! Dumps a VCD waveform of s27 running under arbitrary per-gate delays —
//! open the output in GTKWave to see every transition, glitches included.
//!
//! ```text
//! cargo run --example waveforms [output.vcd]
//! ```

use cfs::goodsim::{DelayModel, DelaySim, VcdRecorder};
use cfs::logic::parse_pattern;
use cfs::netlist::data::s27;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s27.vcd".to_owned());
    let circuit = s27();
    let delays = DelayModel::from_fn(&circuit, |id| 1 + (id.index() as u32 % 4));
    let mut sim = DelaySim::new(&circuit, delays);
    let mut vcd = VcdRecorder::all(&circuit);
    vcd.set_timescale("1ns");
    vcd.sample(sim.now(), sim.values());

    let period = 50;
    for pattern in ["0000", "1111", "0101", "1010", "0011", "1100"] {
        sim.set_inputs(&parse_pattern(pattern)?);
        sim.run_traced(sim.now() + period, &mut vcd)
            .expect("settles within the period");
        sim.clock();
        sim.run_traced(sim.now() + period, &mut vcd)
            .expect("clock-to-Q settles");
        sim.advance_to(sim.now().max(period) / period * period + period);
    }

    let text = vcd.render();
    std::fs::write(&out_path, &text)?;
    println!(
        "wrote {} ({} signals, {} change batches) — open with `gtkwave {}`",
        out_path,
        circuit.num_nodes(),
        vcd.len(),
        out_path
    );
    // A taste of the contents:
    for line in text.lines().take(12) {
        println!("  {line}");
    }
    Ok(())
}
