//! Umbrella crate for the `cfs` workspace — a reproduction of *Dong Ho Lee
//! and Sudhakar M. Reddy, "On Efficient Concurrent Fault Simulation for
//! Synchronous Sequential Circuits," DAC 1992*.
//!
//! Re-exports every member crate; see the crate-level documentation of
//! [`cfs_core`] for the simulator itself and `README.md` for the project
//! overview.

#![forbid(unsafe_code)]

pub use cfs_atpg as atpg;
pub use cfs_baselines as baselines;
pub use cfs_core as core_sim;
pub use cfs_faults as faults;
pub use cfs_goodsim as goodsim;
pub use cfs_logic as logic;
pub use cfs_netlist as netlist;
