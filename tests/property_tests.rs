//! Property-based tests (proptest) over the core data structures and
//! simulator invariants.

use proptest::prelude::*;

use cfs_baselines::SerialSim;
use cfs_core::{Arena, ConcurrentSim, CsimOptions, CsimVariant, ListBuilder, NIL};
use cfs_faults::{collapse_stuck_at, enumerate_stuck_at, transition_value, Edge};
use cfs_logic::{GateFn, Logic, Lut3, PackedLogic, TruthTable};
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::{extract_macros, Circuit};

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![Just(Logic::Zero), Just(Logic::One), Just(Logic::X)]
}

fn arb_gate_fn() -> impl Strategy<Value = GateFn> {
    prop_oneof![
        Just(GateFn::And),
        Just(GateFn::Nand),
        Just(GateFn::Or),
        Just(GateFn::Nor),
        Just(GateFn::Xor),
        Just(GateFn::Xnor),
    ]
}

proptest! {
    /// Kleene gates are monotone in the information order: refining an X
    /// input to a binary value never flips a determined binary output.
    #[test]
    fn gate_eval_is_information_monotone(
        f in arb_gate_fn(),
        inputs in prop::collection::vec(arb_logic(), 1..6),
        pos in any::<prop::sample::Index>(),
        refined in any::<bool>(),
    ) {
        let out = f.eval(&inputs);
        let i = pos.index(inputs.len());
        prop_assume!(inputs[i] == Logic::X);
        let mut refined_inputs = inputs.clone();
        refined_inputs[i] = Logic::from_bool(refined);
        let refined_out = f.eval(&refined_inputs);
        if out.is_binary() {
            prop_assert_eq!(out, refined_out);
        }
    }

    /// The packed 64-lane evaluation agrees with scalar evaluation on
    /// every lane.
    #[test]
    fn packed_eval_matches_scalar(
        f in arb_gate_fn(),
        lanes in prop::collection::vec(
            prop::collection::vec(arb_logic(), 2..5), 1..8),
    ) {
        let arity = lanes[0].len();
        prop_assume!(lanes.iter().all(|l| l.len() == arity));
        let mut words = vec![PackedLogic::ALL_X; arity];
        for (lane, vals) in lanes.iter().enumerate() {
            for (k, &v) in vals.iter().enumerate() {
                words[k].set(lane, v);
            }
        }
        let out = PackedLogic::eval_gate(f, &words);
        for (lane, vals) in lanes.iter().enumerate() {
            prop_assert_eq!(out.lane(lane), f.eval(vals));
        }
    }

    /// A `Lut3` built from a binary table is never *less* defined than the
    /// pessimistic fold and agrees exactly on binary inputs.
    #[test]
    fn lut3_exact_on_binary_inputs(
        bits in any::<u16>(),
        inputs in prop::collection::vec(any::<bool>(), 4),
    ) {
        let table = TruthTable::from_fn(4, |row| bits >> row & 1 != 0);
        let lut = Lut3::from_table(&table);
        let vals: Vec<Logic> = inputs.iter().map(|&b| Logic::from_bool(b)).collect();
        let row = inputs.iter().enumerate().fold(0usize, |acc, (i, &b)| {
            acc | usize::from(b) << i
        });
        prop_assert_eq!(lut.eval(&vals), Logic::from_bool(table.eval_bits(row)));
    }

    /// Table 1 sanity: the transition faulty value is always one of
    /// {pv, cv, X}; and with no transition (pv == cv) it equals cv.
    #[test]
    fn transition_value_is_constrained(
        pv in arb_logic(),
        cv in arb_logic(),
        edge in prop_oneof![Just(Edge::Rise), Just(Edge::Fall)],
    ) {
        let fv = transition_value(edge, pv, cv);
        prop_assert!(fv == pv || fv == cv || fv == Logic::X);
        if pv == cv {
            prop_assert_eq!(fv, cv);
        }
    }

    /// Arena lists preserve their contents; retired runs become slack that
    /// compaction reclaims.
    #[test]
    fn arena_list_round_trip(
        entries in prop::collection::vec((0u32..1000, arb_logic()), 0..40),
    ) {
        let mut sorted: Vec<(u32, Logic)> = entries;
        sorted.sort_by_key(|e| e.0);
        sorted.dedup_by_key(|e| e.0);
        let mut arena = Arena::new();
        let mut b = ListBuilder::new();
        for &(f, v) in &sorted {
            b.push(&mut arena, f, v);
        }
        let head = b.finish(&mut arena);
        prop_assert_eq!(arena.to_vec(head), sorted.clone());
        prop_assert_eq!(arena.live(), sorted.len());
        let freed = arena.free_list(head);
        prop_assert_eq!(freed, sorted.len());
        prop_assert_eq!(arena.live(), 0);
        // Bump allocation: a fresh list appends past the retired run, and a
        // compaction pass reclaims the slack.
        let mut b = ListBuilder::new();
        for &(f, v) in &sorted {
            b.push(&mut arena, f, v);
        }
        let head2 = b.finish(&mut arena);
        prop_assert_eq!(arena.to_vec(head2), sorted.clone());
        prop_assert_eq!(arena.peak(), sorted.len().max(arena.live()));
        if sorted.is_empty() {
            prop_assert_eq!(head2, NIL);
        }
        let mut heads = [head2];
        let mut arrays = [&mut heads[..]];
        let moved = arena.compact(&mut arrays);
        prop_assert_eq!(moved, sorted.len());
        prop_assert_eq!(arena.slack(), 0);
        prop_assert_eq!(arena.to_vec(heads[0]), sorted);
    }
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..6, 2usize..5, 0usize..6, 10usize..60, any::<u64>()).prop_map(
        |(pi, po, dff, gates, seed)| generate(&CircuitSpec::new("prop", pi, po, dff, gates, seed)),
    )
}

fn arb_patterns(
    inputs: usize,
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<Vec<Logic>>> {
    prop::collection::vec(prop::collection::vec(arb_logic(), inputs), len)
}

fn arb_circuit_and_patterns() -> impl Strategy<Value = (Circuit, Vec<Vec<Logic>>)> {
    arb_circuit().prop_flat_map(|c| {
        let n = c.num_inputs();
        (Just(c), arb_patterns(n, 5..20))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline invariant: on arbitrary generated circuits and
    /// arbitrary three-valued pattern sequences, csim-MV detects exactly
    /// the faults the serial oracle detects.
    #[test]
    fn csim_matches_serial_oracle((circuit, patterns) in arb_circuit_and_patterns()) {
        let faults = enumerate_stuck_at(&circuit);
        let reference = SerialSim::new(&circuit, &faults).run(&patterns);
        let mut sim = ConcurrentSim::new(&circuit, &faults, CsimVariant::Mv.options());
        let report = sim.run(&patterns);
        for (i, (a, b)) in reference.statuses.iter().zip(&report.statuses).enumerate() {
            prop_assert_eq!(
                a.is_detected(),
                b.is_detected(),
                "fault {} ({})",
                i,
                faults[i].describe(&circuit)
            );
        }
    }

    /// Macro extraction never changes what a circuit computes: the macro
    /// view evaluates identically to the gate view on random inputs.
    #[test]
    fn macro_view_preserves_function(
        circuit in arb_circuit(),
        cap in 2usize..8,
    ) {
        let macros = extract_macros(&circuit, cap);
        // Every gate covered exactly once; support under the cap except for
        // single gates whose own arity exceeds it.
        let mut covered = vec![false; circuit.num_nodes()];
        for cell in macros.cells() {
            let root_arity = circuit.gate(cell.root()).fanin().len();
            prop_assert!(cell.support().len() <= cap.max(root_arity));
            for &g in cell.members() {
                prop_assert!(!covered[g.index()], "gate covered twice");
                covered[g.index()] = true;
            }
        }
        for &g in circuit.topo_order() {
            prop_assert!(covered[g.index()]);
        }
    }

    /// Fault collapsing is conservative: a collapsed representative is
    /// detected iff every member of its class is (checked via serial
    /// simulation on a sample of classes).
    #[test]
    fn collapse_classes_are_equivalent(circuit in arb_circuit()) {
        let collapsed = collapse_stuck_at(&circuit);
        let patterns: Vec<Vec<Logic>> = (0..12)
            .map(|i| {
                (0..circuit.num_inputs())
                    .map(|k| Logic::from_bool((i * 5 + k * 3) % 7 < 3))
                    .collect()
            })
            .collect();
        let full = SerialSim::new(&circuit, &collapsed.all).run(&patterns);
        // All members of a class must share detection status.
        let mut class_status: Vec<Option<bool>> = vec![None; collapsed.num_classes()];
        for (i, status) in full.statuses.iter().enumerate() {
            let class = collapsed.class_of[i];
            let detected = status.is_detected();
            match class_status[class] {
                None => class_status[class] = Some(detected),
                Some(prev) => prop_assert_eq!(
                    prev,
                    detected,
                    "class {} mixes detected and undetected: {}",
                    class,
                    collapsed.all[i].describe(&circuit)
                ),
            }
        }
    }

    /// The csim `-V` split and fault dropping are pure optimizations: all
    /// four option combinations report identical statuses.
    #[test]
    fn options_do_not_change_semantics(circuit in arb_circuit()) {
        let faults = enumerate_stuck_at(&circuit);
        let patterns: Vec<Vec<Logic>> = (0..10)
            .map(|i| {
                (0..circuit.num_inputs())
                    .map(|k| Logic::from_bool((i + k) % 3 == 0))
                    .collect()
            })
            .collect();
        let mut reference: Option<Vec<bool>> = None;
        for split in [false, true] {
            for drop in [false, true] {
                let mut sim = ConcurrentSim::new(
                    &circuit,
                    &faults,
                    CsimOptions {
                        split_invisible: split,
                        drop_detected: drop,
                        ..CsimVariant::Base.options()
                    },
                );
                let det: Vec<bool> = sim
                    .run(&patterns)
                    .statuses
                    .iter()
                    .map(|s| s.is_detected())
                    .collect();
                match &reference {
                    None => reference = Some(det),
                    Some(r) => prop_assert_eq!(r, &det, "split={} drop={}", split, drop),
                }
            }
        }
    }
}
