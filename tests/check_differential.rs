//! Differential guarantee behind the `cfs-check` preflight: any netlist
//! that passes `fsim check` simulates without panicking in every
//! concurrent variant, serial and fault-sharded, for both fault models —
//! with the debug-build invariant verifier active throughout (these tests
//! compile with `debug_assertions`, so every pattern is re-verified
//! against the concurrent-list laws).

use cfs_baselines::SerialSim;
use cfs_core::{
    ConcurrentSim, CsimVariant, ParallelSim, ParallelTransitionSim, ShardPlan, TransitionOptions,
    TransitionSim,
};
use cfs_faults::{collapse_stuck_at, enumerate_transition};
use cfs_logic::Logic;
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::{parse_bench, write_bench, Circuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// Checks the circuit, then drives it through every simulator
/// configuration the CLI exposes. A panic anywhere fails the test.
fn checked_then_simulated(circuit: &Circuit, patterns: usize, seed: u64) {
    let report = cfs_check::check_circuit(circuit);
    assert!(
        !report.has_errors(),
        "{}: checker rejected a generated circuit:\n{}",
        circuit.name(),
        report.render_text()
    );
    let patterns = random_patterns(circuit, patterns, seed);
    let stuck = collapse_stuck_at(circuit).representatives;
    let reference = SerialSim::new(circuit, &stuck).run(&patterns);
    for variant in CsimVariant::ALL {
        let mut sim = ConcurrentSim::new(circuit, &stuck, variant.options());
        let report = sim.run(&patterns);
        assert_eq!(
            report.detected(),
            reference.detected(),
            "{}: {variant} disagrees with the serial reference",
            circuit.name()
        );
        let mut sharded =
            ParallelSim::new(circuit, &stuck, variant.options(), 4, ShardPlan::RoundRobin);
        let sharded_report = sharded.run(&patterns);
        assert_eq!(
            sharded_report.statuses,
            report.statuses,
            "{}: {variant} threads=4 diverged",
            circuit.name()
        );
    }
    let transition = enumerate_transition(circuit);
    let mut serial_t = TransitionSim::new(circuit, &transition, TransitionOptions::default());
    let serial_report = serial_t.run(&patterns);
    let mut par_t = ParallelTransitionSim::new(
        circuit,
        &transition,
        TransitionOptions::default(),
        4,
        ShardPlan::RoundRobin,
    );
    let par_report = par_t.run(&patterns);
    assert_eq!(par_report.statuses, serial_report.statuses);
}

#[test]
fn checked_random_netlists_never_panic() {
    for seed in 0..6u64 {
        let spec = CircuitSpec::new(
            format!("cd{seed}"),
            4 + (seed as usize % 3),
            3,
            2 + (seed as usize % 4),
            30 + 11 * seed as usize,
            0xd1ff + seed,
        );
        let circuit = generate(&spec);
        checked_then_simulated(&circuit, 48, 77 + seed);
    }
}

#[test]
fn checked_bench_round_trip_never_panics() {
    // The same guarantee holds for circuits that pass through `.bench`
    // serialization (the path `fsim sim <file>` takes).
    let spec = CircuitSpec::new("cdrt", 5, 4, 6, 70, 0xbe7c);
    let text = write_bench(&generate(&spec));
    let report = cfs_check::check_bench_source("cdrt", &text);
    assert!(!report.has_errors(), "{}", report.render_text());
    let circuit = parse_bench("cdrt", &text).expect("checked source parses");
    checked_then_simulated(&circuit, 32, 3);
}

#[test]
fn checked_builtin_benchmarks_never_panic() {
    for name in ["s298g", "s526g"] {
        let circuit = cfs_netlist::generate::benchmark(name).expect("known benchmark");
        checked_then_simulated(&circuit, 32, 11);
    }
}
