//! Cross-validation of the concurrent transition fault simulator against
//! the serial transition reference.

use cfs_baselines::SerialTransitionSim;
use cfs_core::{TransitionOptions, TransitionSim};
use cfs_faults::{enumerate_transition, Edge, TransitionFault};
use cfs_logic::Logic;
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::{data::s27, parse_bench, Circuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

fn cross_validate(circuit: &Circuit, patterns: &[Vec<Logic>]) {
    let faults = enumerate_transition(circuit);
    let reference = SerialTransitionSim::new(circuit, &faults).run(patterns);
    for split in [false, true] {
        let mut sim = TransitionSim::new(
            circuit,
            &faults,
            TransitionOptions {
                split_invisible: split,
                drop_detected: true,
                quiesce_window: 0,
            },
        );
        let report = sim.run(patterns);
        for (i, (a, b)) in reference.statuses.iter().zip(&report.statuses).enumerate() {
            assert_eq!(
                a,
                b,
                "split={split} {}: fault {i} ({})",
                circuit.name(),
                faults[i].describe(circuit)
            );
        }
    }
}

#[test]
fn s27_transition_agrees_with_serial() {
    let c = s27();
    let patterns = random_patterns(&c, 60, 0xD00D);
    cross_validate(&c, &patterns);
}

#[test]
fn generated_circuits_transition_agree() {
    for seed in 0..5 {
        let spec = CircuitSpec::new(format!("tv{seed}"), 5, 4, 5, 55, 5000 + seed);
        let c = generate(&spec);
        let patterns = random_patterns(&c, 40, seed * 13 + 1);
        cross_validate(&c, &patterns);
    }
}

#[test]
fn transition_with_x_patterns_agrees() {
    let spec = CircuitSpec::new("tvx", 4, 3, 4, 40, 8888);
    let c = generate(&spec);
    let mut rng = StdRng::seed_from_u64(3);
    let patterns: Vec<Vec<Logic>> = (0..30)
        .map(|_| {
            (0..c.num_inputs())
                .map(|_| match rng.gen_range(0..8) {
                    0 => Logic::X,
                    k => Logic::from_bool(k % 2 == 0),
                })
                .collect()
        })
        .collect();
    cross_validate(&c, &patterns);
}

#[test]
fn figure4_concurrent_detects_like_the_paper() {
    // Figure 4's qualitative behaviour through the concurrent simulator: a
    // slow-to-rise fault at an AND input caught by a 0→1 sequence with the
    // other side sensitized through a flip-flop.
    let c = parse_bench(
        "fig4",
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(b)\ny = AND(a, q)\n",
    )
    .unwrap();
    let y = c.find("y").unwrap();
    let fault = TransitionFault::new(y, 0, Edge::Rise);
    let mut sim = TransitionSim::new(&c, &[fault], TransitionOptions::default());
    assert!(sim.step(&[Logic::Zero, Logic::One]).is_empty());
    let det = sim.step(&[Logic::One, Logic::One]);
    assert_eq!(det, vec![0], "held 0 at the sensitized AND input");
}

#[test]
fn transition_coverage_of_toggling_vs_constant_patterns() {
    // Constant patterns create no transitions: nothing can be detected.
    let c = s27();
    let faults = enumerate_transition(&c);
    let constant = vec![vec![Logic::One; 4]; 10];
    let mut sim = TransitionSim::new(&c, &faults, TransitionOptions::default());
    let r = sim.run(&constant);
    assert_eq!(r.detected(), 0, "no transitions, no detections");

    let toggling: Vec<Vec<Logic>> = (0..10)
        .map(|i| vec![Logic::from_bool(i % 2 == 0); 4])
        .collect();
    let mut sim = TransitionSim::new(&c, &faults, TransitionOptions::default());
    let r = sim.run(&toggling);
    assert!(r.detected() > 0, "toggling inputs exercise transitions");
}
