//! Differential equivalence for incremental re-simulation: simulating only
//! the change-impact affected cone and transferring every other fault's
//! fate from a baseline report, expanded back through
//! [`ImpactUniverse::expand_statuses`], must produce exactly the detection
//! report of a cold full run over the edited circuit — same detected
//! faults, same first-detection patterns — across every csim variant, both
//! fault models, and serial as well as sharded execution.
//!
//! This is the executable form of the cone-transfer soundness contract: a
//! fault outside the affected cone sees identical values and propagates
//! through identical logic in both circuits, so its recorded fate carries
//! over verbatim.

use cfs_check::{classify_stuck_at, classify_transition, diff_netlists, impact_analysis};
use cfs_core::{
    detections_of, ConcurrentSim, CsimVariant, ParallelSim, ParallelTransitionSim, ShardPlan,
    TransitionOptions, TransitionSim,
};
use cfs_faults::{enumerate_stuck_at, enumerate_transition, FaultStatus};
use cfs_logic::Logic;
use cfs_netlist::{apply_edit, edit_candidates, BenchEdit, Circuit};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// The expanded statuses must tell the same detection story as the cold
/// full run: identical `Detected` entries (pattern and all), and no fault
/// detected on one side only. Non-detected faults may differ in label
/// (`Undetected` vs `Untestable`), which the detection report does not
/// distinguish.
fn assert_detection_equivalence(
    reference: &[FaultStatus],
    expanded: &[FaultStatus],
    context: &str,
) {
    assert_eq!(reference.len(), expanded.len(), "{context}: universe size");
    for (i, (r, e)) in reference.iter().zip(expanded).enumerate() {
        match (r, e) {
            (FaultStatus::Detected { pattern: a }, FaultStatus::Detected { pattern: b }) => {
                assert_eq!(a, b, "{context}: fault {i} first-detection pattern")
            }
            (FaultStatus::Detected { .. }, other) => {
                panic!("{context}: fault {i} detected cold but {other:?} incrementally")
            }
            (other, FaultStatus::Detected { .. }) => {
                panic!("{context}: fault {i} {other:?} cold but detected incrementally")
            }
            _ => {}
        }
    }
    assert_eq!(
        detections_of(reference),
        detections_of(expanded),
        "{context}: detection lists"
    );
}

/// One full stuck-at scenario: baseline fates recorded on `base`, the
/// affected cone of `edited` re-simulated serially and sharded, the
/// expansion compared against a cold full run of `edited`.
fn check_stuck(base: &Circuit, edited: &Circuit, patterns: &[Vec<Logic>], context: &str) {
    let diff = diff_netlists(base, edited, None, None);
    let analysis = impact_analysis(base, edited, diff);
    let universe = classify_stuck_at(base, edited, &analysis);
    universe.validate().expect("impact universe invariants");
    let base_universe = enumerate_stuck_at(base);
    assert_eq!(base_universe.len(), universe.stats.baseline_full);
    for variant in CsimVariant::ALL {
        let baseline = ConcurrentSim::new(base, &base_universe, variant.options())
            .run(patterns)
            .statuses;
        let cold = ConcurrentSim::new(edited, &universe.full, variant.options())
            .run(patterns)
            .statuses;
        for threads in THREAD_COUNTS {
            let resim = if threads == 1 {
                ConcurrentSim::new(edited, &universe.affected, variant.options())
                    .run(patterns)
                    .statuses
            } else {
                ParallelSim::new(
                    edited,
                    &universe.affected,
                    variant.options(),
                    threads,
                    ShardPlan::RoundRobin,
                )
                .run(patterns)
                .statuses
            };
            let expanded = universe.expand_statuses(&resim, &baseline);
            assert_detection_equivalence(
                &cold,
                &expanded,
                &format!("{context} stuck {variant} t{threads}"),
            );
        }
    }
}

/// The transition-fault mirror of [`check_stuck`].
fn check_transition(base: &Circuit, edited: &Circuit, patterns: &[Vec<Logic>], context: &str) {
    let diff = diff_netlists(base, edited, None, None);
    let analysis = impact_analysis(base, edited, diff);
    let universe = classify_transition(base, edited, &analysis);
    universe.validate().expect("impact universe invariants");
    let base_universe = enumerate_transition(base);
    assert_eq!(base_universe.len(), universe.stats.baseline_full);
    let baseline = TransitionSim::new(base, &base_universe, TransitionOptions::default())
        .run(patterns)
        .statuses;
    let cold = TransitionSim::new(edited, &universe.full, TransitionOptions::default())
        .run(patterns)
        .statuses;
    for threads in THREAD_COUNTS {
        let resim = if threads == 1 {
            TransitionSim::new(edited, &universe.affected, TransitionOptions::default())
                .run(patterns)
                .statuses
        } else {
            ParallelTransitionSim::new(
                edited,
                &universe.affected,
                TransitionOptions::default(),
                threads,
                ShardPlan::RoundRobin,
            )
            .run(patterns)
            .statuses
        };
        let expanded = universe.expand_statuses(&resim, &baseline);
        assert_detection_equivalence(
            &cold,
            &expanded,
            &format!("{context} transition t{threads}"),
        );
    }
}

fn check_edit(base: &Circuit, edit: BenchEdit, choice: usize, num_patterns: usize, seed: u64) {
    let applied = apply_edit(base, edit, choice).expect("fixtures accept every edit");
    let patterns = random_patterns(base, num_patterns, seed);
    let context = format!("{} {edit}#{choice}", base.name());
    check_stuck(base, &applied.circuit, &patterns, &context);
    check_transition(base, &applied.circuit, &patterns, &context);
}

#[test]
fn incremental_matches_cold_on_s27() {
    let c = cfs_netlist::data::s27();
    for edit in BenchEdit::ALL {
        for choice in 0..edit_candidates(&c, edit).min(3) {
            check_edit(&c, edit, choice, 96, 29);
        }
    }
}

#[test]
fn incremental_matches_cold_on_s298g() {
    let c = cfs_netlist::generate::benchmark("s298g").expect("bundled benchmark");
    for edit in BenchEdit::ALL {
        check_edit(&c, edit, 5, 64, 31);
    }
}

#[test]
fn incremental_matches_cold_on_s641g() {
    let c = cfs_netlist::generate::benchmark("s641g").expect("bundled benchmark");
    for edit in BenchEdit::ALL {
        check_edit(&c, edit, 11, 48, 37);
    }
}

/// An identical pair transfers everything: nothing re-simulates and the
/// expansion is exactly the baseline.
#[test]
fn identical_circuits_transfer_every_fate() {
    let c = cfs_netlist::generate::benchmark("s298g").expect("bundled benchmark");
    let diff = diff_netlists(&c, &c, None, None);
    let analysis = impact_analysis(&c, &c, diff);
    let universe = classify_stuck_at(&c, &c, &analysis);
    assert_eq!(universe.stats.affected, 0);
    assert_eq!(universe.stats.transferred, universe.stats.full);
    let patterns = random_patterns(&c, 32, 41);
    let baseline = ConcurrentSim::new(&c, &universe.full, CsimVariant::Mv.options())
        .run(&patterns)
        .statuses;
    let expanded = universe.expand_statuses(&[], &baseline);
    assert_eq!(expanded, baseline);
}

/// A single dead-logic edit must leave the affected universe strictly
/// smaller than the full one — the headline claim of incremental
/// re-simulation — on every bundled fixture.
#[test]
fn single_edit_affects_a_strict_subset() {
    for name in ["s298g", "s641g", "s1238g"] {
        let c = cfs_netlist::generate::benchmark(name).expect("bundled benchmark");
        let applied = apply_edit(&c, BenchEdit::DeadLogic, 0).expect("dead logic always applies");
        let diff = diff_netlists(&c, &applied.circuit, None, None);
        let analysis = impact_analysis(&c, &applied.circuit, diff);
        for (model, stats) in [
            (
                "stuck",
                classify_stuck_at(&c, &applied.circuit, &analysis).stats,
            ),
            (
                "transition",
                classify_transition(&c, &applied.circuit, &analysis).stats,
            ),
        ] {
            assert!(
                stats.affected < stats.full,
                "{name} {model}: {} of {} affected",
                stats.affected,
                stats.full
            );
            assert!(stats.transferred > 0, "{name} {model}: nothing transferred");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random scripted edits on s27 preserve detection equivalence through
    /// the incremental path (serial, MV variant — the matrix tests above
    /// cover the other variants and sharding).
    #[test]
    fn random_edits_preserve_detection_equivalence(
        edit_idx in 0usize..3,
        choice in 0usize..64,
        seed in 1u64..1024,
    ) {
        let base = cfs_netlist::data::s27();
        let edit = BenchEdit::ALL[edit_idx];
        let applied = apply_edit(&base, edit, choice).expect("s27 accepts every edit");
        let patterns = random_patterns(&base, 48, seed);
        let diff = diff_netlists(&base, &applied.circuit, None, None);
        let analysis = impact_analysis(&base, &applied.circuit, diff);
        let universe = classify_stuck_at(&base, &applied.circuit, &analysis);
        universe.validate().expect("impact universe invariants");
        let options = || CsimVariant::Mv.options();
        let baseline = ConcurrentSim::new(&base, &enumerate_stuck_at(&base), options())
            .run(&patterns)
            .statuses;
        let cold = ConcurrentSim::new(&applied.circuit, &universe.full, options())
            .run(&patterns)
            .statuses;
        let resim = ConcurrentSim::new(&applied.circuit, &universe.affected, options())
            .run(&patterns)
            .statuses;
        let expanded = universe.expand_statuses(&resim, &baseline);
        assert_detection_equivalence(&cold, &expanded, &format!("s27 {edit}#{choice} seed {seed}"));
    }
}
