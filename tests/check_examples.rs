//! The bundled example netlists and every built-in benchmark must pass
//! `cfs-check` with zero error-severity findings — the same gate CI
//! enforces by running `fsim check` over `examples/bench/`.

use cfs_check::{check_bench_source, check_circuit};

#[test]
fn bundled_example_benches_are_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/bench");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("examples/bench exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("bench") {
            continue;
        }
        let name = path.file_stem().unwrap().to_str().unwrap().to_owned();
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let report = check_bench_source(&name, &text);
        assert!(
            !report.has_errors(),
            "{}: {}",
            path.display(),
            report.render_text()
        );
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the bundled fixtures, found {checked}"
    );
}

#[test]
fn builtin_s27_is_clean() {
    let report = check_circuit(&cfs_netlist::data::s27());
    assert!(report.diagnostics.is_empty(), "{}", report.render_text());
}

#[test]
fn builtin_generated_benchmarks_are_clean() {
    for name in [
        "s298g", "s344g", "s349g", "s386g", "s400g", "s444g", "s526g", "s641g", "s713g",
    ] {
        let c = cfs_netlist::generate::benchmark(name).expect("known benchmark");
        let report = check_circuit(&c);
        assert!(!report.has_errors(), "{name}: {}", report.render_text());
    }
}
