//! Soundness of the static fault-universe analyses, checked against
//! brute-force simulation on small random circuits:
//!
//! - every statically pruned fault is truly undetectable (exhaustively for
//!   combinational circuits, over long random sequences for sequential
//!   ones), simulated by the *serial baseline*, not the concurrent engine
//!   the analyses were built alongside;
//! - every dominance edge holds: on combinational circuits, the set of
//!   patterns detecting the dominated class is contained in the set
//!   detecting the dominator class;
//! - the observability analysis agrees with the `N004` unreachable-gate
//!   rule: every fault at an unobservable gate is pruned, and the `F003`
//!   cross-check stays silent on netlists where both passes ran.

use proptest::prelude::*;

use cfs_baselines::SerialSim;
use cfs_check::{
    analyze_circuit, observable_nodes, prune_stuck_at, prune_stuck_at_learned, prune_transition,
    ImplicationGraph, LearnOptions, RuleCode,
};
use cfs_core::{TransitionOptions, TransitionSim};
use cfs_faults::{
    collapse_stuck_at_exact, dominance_collapse, FaultFate, FaultStatus, PruneReason, StuckAt,
};
use cfs_logic::Logic;
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::{Circuit, GateKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// All `2^n` binary input vectors, for exhaustive combinational proofs.
fn exhaustive_patterns(circuit: &Circuit) -> Vec<Vec<Logic>> {
    let n = circuit.num_inputs();
    assert!(n <= 10, "exhaustive enumeration wants few inputs");
    (0..1usize << n)
        .map(|bits| {
            (0..n)
                .map(|i| Logic::from_bool(bits >> i & 1 != 0))
                .collect()
        })
        .collect()
}

fn arb_spec() -> impl Strategy<Value = CircuitSpec> {
    (3usize..6, 1usize..4, 0usize..4, 12usize..40, any::<u64>()).prop_map(
        |(inputs, outputs, dffs, gates, seed)| {
            CircuitSpec::new("soundness", inputs, outputs, dffs, gates, seed)
        },
    )
}

/// Faults of the full universe that the analyses proved undetectable.
fn pruned_faults(circuit: &Circuit) -> Vec<StuckAt> {
    let analysis = analyze_circuit(circuit);
    let pruned = prune_stuck_at(circuit, &analysis);
    pruned
        .fate
        .iter()
        .zip(&pruned.full)
        .filter(|(fate, _)| matches!(fate, FaultFate::Pruned(_)))
        .map(|(_, &f)| f)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Brute force: a pruned fault is never detected by the serial
    /// baseline — exhaustively on combinational circuits, over a long
    /// random sequence on sequential ones.
    #[test]
    fn pruned_stuck_faults_are_undetectable(spec in arb_spec(), seed in any::<u64>()) {
        let circuit = generate(&spec);
        let victims = pruned_faults(&circuit);
        prop_assume!(!victims.is_empty());
        let patterns = if circuit.num_dffs() == 0 {
            exhaustive_patterns(&circuit)
        } else {
            random_patterns(&circuit, 192, seed)
        };
        let report = SerialSim::new(&circuit, &victims).run(&patterns);
        for (f, status) in victims.iter().zip(&report.statuses) {
            prop_assert!(
                !matches!(status, FaultStatus::Detected { .. }),
                "{}: statically pruned but detected",
                f.describe(&circuit)
            );
        }
    }

    /// Pruned transition faults are never detected either.
    #[test]
    fn pruned_transition_faults_are_undetectable(spec in arb_spec(), seed in any::<u64>()) {
        let circuit = generate(&spec);
        let analysis = analyze_circuit(&circuit);
        let pruned = prune_transition(&circuit, &analysis);
        let victims: Vec<_> = pruned
            .fate
            .iter()
            .zip(&pruned.full)
            .filter(|(fate, _)| matches!(fate, FaultFate::Pruned(_)))
            .map(|(_, &f)| f)
            .collect();
        prop_assume!(!victims.is_empty());
        let patterns = if circuit.num_dffs() == 0 {
            exhaustive_patterns(&circuit)
        } else {
            random_patterns(&circuit, 192, seed)
        };
        let report =
            TransitionSim::new(&circuit, &victims, TransitionOptions::default()).run(&patterns);
        for (f, status) in victims.iter().zip(&report.statuses) {
            prop_assert!(
                !matches!(status, FaultStatus::Detected { .. }),
                "{}: statically pruned but detected",
                f.describe(&circuit)
            );
        }
    }

    /// Every dominance edge holds on combinational circuits: exhaustively,
    /// each pattern detecting the dominated class also detects the
    /// dominator class.
    #[test]
    fn dominance_edges_hold_exhaustively(spec in arb_spec()) {
        let mut spec = spec;
        spec.dffs = 0;
        let circuit = generate(&spec);
        let dom = dominance_collapse(&circuit);
        prop_assume!(!dom.edges.is_empty());
        let patterns = exhaustive_patterns(&circuit);
        let reps = &dom.base.representatives;
        // Per-pattern detection sets: one single-pattern run per pattern
        // (combinational, so patterns are independent).
        let mut detects: Vec<Vec<bool>> = vec![Vec::new(); reps.len()];
        for p in &patterns {
            let report = SerialSim::new(&circuit, reps).run(std::slice::from_ref(p));
            for (class, status) in report.statuses.iter().enumerate() {
                detects[class].push(matches!(status, FaultStatus::Detected { .. }));
            }
        }
        for &(dominator, dominated) in &dom.edges {
            for (pattern, detected) in detects[dominated as usize].iter().enumerate() {
                if *detected {
                    prop_assert!(
                        detects[dominator as usize][pattern],
                        "pattern {pattern} detects dominated class {dominated} but not \
                         dominator {dominator}"
                    );
                }
            }
        }
    }

    /// Unified observability: every fault at a gate the reachability pass
    /// calls unobservable is pruned from both universes.
    #[test]
    fn unobservable_gates_lose_all_their_faults(spec in arb_spec()) {
        let circuit = generate(&spec);
        let observable = observable_nodes(&circuit);
        let analysis = analyze_circuit(&circuit);
        let stuck = prune_stuck_at(&circuit, &analysis);
        for (fate, f) in stuck.fate.iter().zip(&stuck.full) {
            let site = match f.site {
                cfs_faults::FaultSite::Output { gate } => gate,
                cfs_faults::FaultSite::Pin { gate, .. } => gate,
            };
            if !observable[site.index()] {
                prop_assert!(
                    matches!(fate, FaultFate::Pruned(_)),
                    "{}: at unobservable gate but kept",
                    f.describe(&circuit)
                );
            }
        }
        let transition = prune_transition(&circuit, &analysis);
        for (fate, f) in transition.fate.iter().zip(&transition.full) {
            if !observable[f.gate.index()] {
                prop_assert!(
                    matches!(fate, FaultFate::Pruned(_)),
                    "{}: at unobservable gate but kept",
                    f.describe(&circuit)
                );
            }
        }
    }
}

/// All binary input *sequences* of the given length, for exhaustive
/// sequential proofs. `(2^inputs)^len` sequences — keep both small.
fn exhaustive_sequences(circuit: &Circuit, len: usize) -> Vec<Vec<Vec<Logic>>> {
    let n = circuit.num_inputs();
    let per_cycle = 1usize << n;
    let total = per_cycle.pow(len as u32);
    assert!(total <= 1 << 13, "sequence space too large to enumerate");
    (0..total)
        .map(|mut code| {
            (0..len)
                .map(|_| {
                    let bits = code % per_cycle;
                    code /= per_cycle;
                    (0..n)
                        .map(|i| Logic::from_bool(bits >> i & 1 != 0))
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Ternary good-machine reference: per cycle, the settled value of every
/// net (flip-flops start all-`X` and latch their D input at cycle ends).
fn ternary_trace(circuit: &Circuit, patterns: &[Vec<Logic>]) -> Vec<Vec<Logic>> {
    let mut state = vec![Logic::X; circuit.num_nodes()];
    let mut trace = Vec::with_capacity(patterns.len());
    for p in patterns {
        for (i, &inp) in circuit.inputs().iter().enumerate() {
            state[inp.index()] = p[i];
        }
        for &g in circuit.topo_order() {
            let gate = circuit.gate(g);
            let GateKind::Comb(f) = gate.kind() else {
                unreachable!("topo order is combinational")
            };
            let ins: Vec<Logic> = gate.fanin().iter().map(|s| state[s.index()]).collect();
            state[g.index()] = f.eval(&ins);
        }
        trace.push(state.clone());
        let latched: Vec<(usize, Logic)> = circuit
            .dffs()
            .iter()
            .map(|&q| (q.index(), state[circuit.gate(q).fanin()[0].index()]))
            .collect();
        for (q, v) in latched {
            state[q] = v;
        }
    }
    trace
}

/// Small sequential circuits whose full sequence space stays enumerable:
/// exactly 3 inputs so `8^4 = 4096` length-4 sequences cover every
/// behaviour up to (and past) the default unroll depth.
fn arb_learn_spec() -> impl Strategy<Value = CircuitSpec> {
    (1usize..3, 1usize..4, 10usize..25, any::<u64>()).prop_map(|(outputs, dffs, gates, seed)| {
        CircuitSpec::new("learn_soundness", 3, outputs, dffs, gates, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Brute force over the *entire* sequence space: a fault pruned as
    /// `F004` conflict-untestable is not detected by any binary input
    /// sequence of length 4 (twice the default unroll depth), simulated
    /// by the serial baseline. This is the strongest soundness evidence
    /// the suite has — no sampling, no reliance on the engine under test.
    #[test]
    fn f004_faults_are_exhaustively_undetectable(spec in arb_learn_spec()) {
        let circuit = generate(&spec);
        let analysis = analyze_circuit(&circuit);
        let graph = ImplicationGraph::build(&circuit, &analysis, LearnOptions::default());
        let learned = prune_stuck_at_learned(&circuit, &analysis, &graph);
        learned.universe.validate().expect("learned universe invariants");
        let victims: Vec<StuckAt> = learned
            .universe
            .fate
            .iter()
            .zip(&learned.universe.full)
            .filter(|(fate, _)| {
                matches!(fate, FaultFate::Pruned(PruneReason::ConflictUntestable))
            })
            .map(|(_, &f)| f)
            .collect();
        for sequence in exhaustive_sequences(&circuit, 4) {
            if victims.is_empty() {
                break; // vacuous pass is fine; the fixture test is not
            }
            let report = SerialSim::new(&circuit, &victims).run(&sequence);
            for (f, status) in victims.iter().zip(&report.statuses) {
                prop_assert!(
                    !matches!(status, FaultStatus::Detected { .. }),
                    "{}: F004-pruned but detected",
                    f.describe(&circuit)
                );
            }
        }
    }

    /// The implication closure is consistent with reality: on any ternary
    /// good-machine trace, once a net holds a binary value at a steady
    /// cycle (`t ≥ 2·(frames−1)`, past the learning horizon), every fact
    /// in `implications_of` holds at its frame offset. In particular the
    /// closure never derives both `ℓ` and `¬ℓ` from a satisfied literal —
    /// the trace would have to violate one of them.
    #[test]
    fn implication_closure_is_consistent(spec in arb_spec(), seed in any::<u64>()) {
        let circuit = generate(&spec);
        let analysis = analyze_circuit(&circuit);
        let options = LearnOptions::default();
        let graph = ImplicationGraph::build(&circuit, &analysis, options);
        let patterns = random_patterns(&circuit, 48, seed);
        let trace = ternary_trace(&circuit, &patterns);
        let horizon = 2 * (options.frames - 1);
        for t in horizon..trace.len() {
            for node in 0..circuit.num_nodes() {
                let v = trace[t][node];
                if !v.is_binary() {
                    continue;
                }
                let id = cfs_netlist::GateId::from_index(node);
                for imp in graph.implications_of(id, v == Logic::One) {
                    let Some(at) = t.checked_add_signed(imp.delta as isize) else {
                        continue;
                    };
                    if at >= trace.len() {
                        continue;
                    }
                    let actual = trace[at][imp.target.index()];
                    prop_assert_eq!(
                        actual,
                        Logic::from_bool(imp.value),
                        "{:?}={} at cycle {} implies {:?}={} at cycle {}, trace says {:?} \
                         (learned: {})",
                        circuit.gate(id).name(), v, t,
                        circuit.gate(imp.target).name(), imp.value, at,
                        actual, imp.learned
                    );
                }
            }
        }
    }
}

/// The textbook redundancy `y = OR(a, AND(a, b))`: the AND output
/// stuck-at-0 needs `a=1` to excite and `a=0` to propagate. The learn pass
/// must prove the conflict (`F004`), and brute force over every input
/// sequence confirms the fault is genuinely undetectable — the
/// non-vacuous anchor for the proptest above.
#[test]
fn textbook_redundant_fault_is_f004_and_exhaustively_undetectable() {
    let source = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(a, m)\n";
    let circuit = cfs_netlist::parse_bench("redundant", source).expect("fixture parses");
    let analysis = analyze_circuit(&circuit);
    let graph = ImplicationGraph::build(&circuit, &analysis, LearnOptions::default());
    let learned = prune_stuck_at_learned(&circuit, &analysis, &graph);
    let m = circuit.find("m").expect("net m");
    let victim = StuckAt::output(m, false);
    let idx = learned
        .universe
        .full
        .iter()
        .position(|&f| f == victim)
        .expect("fault enumerated");
    assert_eq!(
        learned.universe.fate[idx],
        FaultFate::Pruned(PruneReason::ConflictUntestable),
        "the redundant fault must be F004-pruned"
    );
    for sequence in exhaustive_sequences(&circuit, 3) {
        let report = SerialSim::new(&circuit, std::slice::from_ref(&victim)).run(&sequence);
        assert!(
            !matches!(report.statuses[0], FaultStatus::Detected { .. }),
            "the textbook redundancy was detected — oracle broken"
        );
    }
}

/// The textual `N004` (unreachable gate) rule and the observability
/// analysis agree on a fixture built to trigger both: `mid` and `dead`
/// form a cone with no path to the output. The `F003` cross-check runs as
/// part of `check_bench_source` and must stay silent, and every fault in
/// the dead cone is pruned unobservable.
#[test]
fn n004_gates_are_unobservable_and_their_faults_pruned() {
    let source = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\nmid = NOT(a)\ndead = AND(mid, b)\n";
    let report = cfs_check::check_bench_source("dead_cone", source);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == RuleCode::UnreachableGate),
        "fixture must trigger N004:\n{}",
        report.render_text()
    );
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code == RuleCode::ObservabilityMismatch),
        "the two observability passes disagree:\n{}",
        report.render_text()
    );
    let circuit = cfs_netlist::parse_bench("dead_cone", source).expect("fixture parses");
    let observable = observable_nodes(&circuit);
    let analysis = analyze_circuit(&circuit);
    let pruned = prune_stuck_at(&circuit, &analysis);
    let mut dead_faults = 0usize;
    for (fate, f) in pruned.fate.iter().zip(&pruned.full) {
        let site = match f.site {
            cfs_faults::FaultSite::Output { gate } => gate,
            cfs_faults::FaultSite::Pin { gate, .. } => gate,
        };
        if !observable[site.index()] {
            dead_faults += 1;
            assert!(
                matches!(fate, FaultFate::Pruned(_)),
                "{}: in the dead cone but kept",
                f.describe(&circuit)
            );
        }
    }
    assert!(dead_faults > 0, "fixture must put faults in the dead cone");
}

/// Exact collapsing (the `--prune` base) only merges faults with identical
/// behaviour: spot-check that every class member has the same detection
/// status as its representative on a random sequential circuit.
#[test]
fn exact_classes_share_detection_behaviour() {
    let spec = CircuitSpec::new("exact_classes", 5, 3, 2, 35, 0x5EED);
    let circuit = generate(&spec);
    let col = collapse_stuck_at_exact(&circuit);
    let patterns = random_patterns(&circuit, 96, 9);
    let report = SerialSim::new(&circuit, &col.all).run(&patterns);
    for (i, &class) in col.class_of.iter().enumerate() {
        let rep_fault = col.representatives[class];
        let rep_index = col
            .all
            .iter()
            .position(|&f| f == rep_fault)
            .expect("representative is in the universe");
        assert_eq!(
            report.statuses[i],
            report.statuses[rep_index],
            "{}: differs from its class representative",
            col.all[i].describe(&circuit)
        );
    }
}
