//! Fault-sampling statistics against ground truth, and engine structural
//! invariants under stress.

use cfs_core::{ConcurrentSim, CsimOptions, CsimVariant};
use cfs_faults::{enumerate_stuck_at, estimate_coverage, sample_faults};
use cfs_logic::Logic;
use cfs_netlist::generate::{benchmark, generate, CircuitSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

#[test]
fn sampled_coverage_brackets_true_coverage() {
    let c = benchmark("s1196g").unwrap();
    let all = enumerate_stuck_at(&c);
    let patterns = random_patterns(c.num_inputs(), 150, 0xFACE);

    // Ground truth over the whole universe.
    let mut full = ConcurrentSim::new(&c, &all, CsimVariant::Mv.options());
    let truth = full.run(&patterns).coverage_percent();

    // Estimates from independent samples: most must bracket the truth
    // (the interval is ~95%, so demand at least 8 of 10).
    let mut hits = 0;
    for seed in 0..10 {
        let (sample, _) = sample_faults(&all, 250, seed);
        let mut sim = ConcurrentSim::new(&c, &sample, CsimVariant::Mv.options());
        let report = sim.run(&patterns);
        let est = estimate_coverage(&report.statuses, all.len());
        if est.contains(truth) {
            hits += 1;
        }
    }
    assert!(hits >= 8, "confidence interval too narrow: {hits}/10");
}

#[test]
fn engine_invariants_hold_under_stress() {
    // Random circuits, random X-containing stimulus, all option
    // combinations: the fault-list structure must stay well-formed after
    // every cycle.
    let mut rng = StdRng::seed_from_u64(404);
    for seed in 0..3u64 {
        let spec = CircuitSpec::new(format!("inv{seed}"), 4, 3, 5, 45, 3000 + seed);
        let c = generate(&spec);
        let faults = enumerate_stuck_at(&c);
        for split in [false, true] {
            for use_macros in [false, true] {
                for drop in [false, true] {
                    let mut sim = ConcurrentSim::new(
                        &c,
                        &faults,
                        CsimOptions {
                            split_invisible: split,
                            use_macros,
                            macro_max_inputs: 4,
                            drop_detected: drop,
                            quiesce_window: 0,
                        },
                    );
                    for _ in 0..15 {
                        let p: Vec<Logic> = (0..c.num_inputs())
                            .map(|_| match rng.gen_range(0..6) {
                                0 => Logic::X,
                                k => Logic::from_bool(k % 2 == 0),
                            })
                            .collect();
                        sim.step(&p);
                        sim.assert_invariants();
                    }
                }
            }
        }
    }
}

#[test]
fn dropping_eventually_frees_detected_elements() {
    // After detection, continued simulation traverses the lists and purges
    // the dropped elements: live storage must shrink towards the floor of
    // permanent local elements of undetected faults.
    let c = benchmark("s298g").unwrap();
    let faults = enumerate_stuck_at(&c);
    let patterns = random_patterns(c.num_inputs(), 120, 3);
    let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::V.options());
    for p in &patterns {
        sim.step(p);
    }
    let detected = sim.detected();
    assert!(detected > 0);
    let live = sim.live_elements();
    let peak = sim.peak_elements();
    assert!(
        live < peak,
        "event-driven dropping reclaimed storage: live {live} < peak {peak}"
    );
    sim.assert_invariants();
}
