//! The full-scan flow: transform a sequential benchmark into its scan
//! view, fault-simulate it with PPSFP (pattern-parallel), and cross-check
//! against the serial oracle — the combinational world the paper's
//! sequential method makes unnecessary.

use cfs_baselines::{PpsfpSim, SerialSim};
use cfs_faults::enumerate_stuck_at;
use cfs_logic::Logic;
use cfs_netlist::{full_scan_view, generate::benchmark};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn ppsfp_on_scan_view_matches_serial() {
    let seq = benchmark("s298g").expect("known benchmark");
    let scan = full_scan_view(&seq);
    let c = &scan.circuit;
    let faults = enumerate_stuck_at(c);
    let mut rng = StdRng::seed_from_u64(0x5ca1);
    let patterns: Vec<Vec<Logic>> = (0..200)
        .map(|_| {
            (0..c.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    let mut ppsfp = PpsfpSim::new(c, &faults);
    let report = ppsfp.run(&patterns);
    let reference = SerialSim::new(c, &faults).run(&patterns);
    for (i, (a, b)) in reference.statuses.iter().zip(&report.statuses).enumerate() {
        assert_eq!(a, b, "fault {i}: {}", faults[i].describe(c));
    }
    assert!(report.detected() > 0);
}

#[test]
fn scan_coverage_beats_sequential_coverage() {
    // Full observability/controllability of the state raises coverage for
    // the same number of test cycles — the reason scan exists.
    let seq = benchmark("s298g").expect("known benchmark");
    let scan = full_scan_view(&seq);
    let mut rng = StdRng::seed_from_u64(7);
    let n = 150;

    // Sequential run: csim-MV over the real inputs only.
    let seq_faults = cfs_faults::collapse_stuck_at(&seq).representatives;
    let seq_patterns: Vec<Vec<Logic>> = (0..n)
        .map(|_| {
            (0..seq.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    let mut csim =
        cfs_core::ConcurrentSim::new(&seq, &seq_faults, cfs_core::CsimVariant::Mv.options());
    let seq_cvg = csim.run(&seq_patterns).coverage_percent();

    // Scan run: the same budget of test frames, but state is directly
    // controllable.
    let scan_faults = cfs_faults::collapse_stuck_at(&scan.circuit).representatives;
    let scan_patterns: Vec<Vec<Logic>> = (0..n)
        .map(|_| {
            (0..scan.circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    let mut ppsfp = PpsfpSim::new(&scan.circuit, &scan_faults);
    let scan_cvg = ppsfp.run(&scan_patterns).coverage_percent();

    assert!(
        scan_cvg > seq_cvg,
        "scan {scan_cvg:.1}% > sequential {seq_cvg:.1}%"
    );
}
