//! Differential equivalence for static fault-universe pruning: a run over
//! the statically pruned universe, expanded back through
//! [`PrunedUniverse::expand_statuses`], must produce exactly the detection
//! report of a full uncollapsed run — same detected faults, same first
//! detection patterns — across every csim variant, both fault models, and
//! serial as well as sharded execution.
//!
//! This is the executable form of the soundness contract: pruning may only
//! remove faults that were never going to be detected, and exact
//! collapsing may only merge faults with identical per-pattern behaviour.

use cfs_check::{
    analyze_circuit, prune_stuck_at, prune_stuck_at_learned, prune_transition,
    prune_transition_learned, ImplicationGraph, LearnOptions,
};
use cfs_core::{
    detections_of, ConcurrentSim, CsimVariant, ParallelSim, ParallelTransitionSim, ShardPlan,
    TransitionOptions, TransitionSim,
};
use cfs_faults::{enumerate_stuck_at, enumerate_transition, FaultStatus, PrunedUniverse};
use cfs_logic::Logic;
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// The expanded statuses must tell the same detection story as the
/// reference: identical `Detected` entries (pattern and all), and no fault
/// detected on one side only. Non-detected faults may differ in label
/// (`Undetected` vs `Untestable`), which the detection report does not
/// distinguish.
fn assert_detection_equivalence(
    reference: &[FaultStatus],
    expanded: &[FaultStatus],
    context: &str,
) {
    assert_eq!(reference.len(), expanded.len(), "{context}: universe size");
    for (i, (r, e)) in reference.iter().zip(expanded).enumerate() {
        match (r, e) {
            (FaultStatus::Detected { pattern: a }, FaultStatus::Detected { pattern: b }) => {
                assert_eq!(a, b, "{context}: fault {i} first-detection pattern")
            }
            (FaultStatus::Detected { .. }, other) => {
                panic!("{context}: fault {i} detected in full run but {other:?} after pruning")
            }
            (other, FaultStatus::Detected { .. }) => {
                panic!("{context}: fault {i} {other:?} in full run but detected after pruning")
            }
            _ => {}
        }
    }
    assert_eq!(
        detections_of(reference),
        detections_of(expanded),
        "{context}: detection lists"
    );
}

fn check_stuck(circuit: &Circuit, patterns: &[Vec<Logic>]) {
    let full = enumerate_stuck_at(circuit);
    let analysis = analyze_circuit(circuit);
    let pruned: PrunedUniverse<_> = prune_stuck_at(circuit, &analysis);
    pruned.validate().expect("pruned universe invariants");
    assert_eq!(pruned.full, full, "enumeration order is the contract");
    for variant in CsimVariant::ALL {
        let reference = ConcurrentSim::new(circuit, &full, variant.options()).run(patterns);
        for threads in THREAD_COUNTS {
            let report = if threads == 1 {
                ConcurrentSim::new(circuit, &pruned.sim, variant.options()).run(patterns)
            } else {
                ParallelSim::new(
                    circuit,
                    &pruned.sim,
                    variant.options(),
                    threads,
                    ShardPlan::RoundRobin,
                )
                .run(patterns)
            };
            let expanded = pruned.expand_statuses(&report.statuses);
            assert_detection_equivalence(
                &reference.statuses,
                &expanded,
                &format!("{} stuck {variant} t{threads}", circuit.name()),
            );
        }
    }
}

fn check_transition(circuit: &Circuit, patterns: &[Vec<Logic>]) {
    let full = enumerate_transition(circuit);
    let analysis = analyze_circuit(circuit);
    let pruned = prune_transition(circuit, &analysis);
    pruned.validate().expect("pruned universe invariants");
    assert_eq!(pruned.full, full, "enumeration order is the contract");
    let reference = TransitionSim::new(circuit, &full, TransitionOptions::default()).run(patterns);
    for threads in THREAD_COUNTS {
        let report = if threads == 1 {
            TransitionSim::new(circuit, &pruned.sim, TransitionOptions::default()).run(patterns)
        } else {
            ParallelTransitionSim::new(
                circuit,
                &pruned.sim,
                TransitionOptions::default(),
                threads,
                ShardPlan::RoundRobin,
            )
            .run(patterns)
        };
        let expanded = pruned.expand_statuses(&report.statuses);
        assert_detection_equivalence(
            &reference.statuses,
            &expanded,
            &format!("{} transition t{threads}", circuit.name()),
        );
    }
}

/// The learned universe (`--prune --learn`) obeys the same contract: a
/// subset of the base pruned universe whose expanded report matches the
/// full run, serial and sharded, both fault models.
fn check_learned(circuit: &Circuit, patterns: &[Vec<Logic>]) {
    let analysis = analyze_circuit(circuit);
    let graph = ImplicationGraph::build(circuit, &analysis, LearnOptions::default());

    let base = prune_stuck_at(circuit, &analysis);
    let learned = prune_stuck_at_learned(circuit, &analysis, &graph);
    learned
        .universe
        .validate()
        .expect("learned universe invariants");
    assert_eq!(learned.universe.full, base.full, "enumeration order kept");
    assert!(
        learned.universe.stats.sim <= base.stats.sim,
        "learning never grows"
    );
    let reference = ConcurrentSim::new(circuit, &learned.universe.full, CsimVariant::Mv.options())
        .run(patterns);
    for threads in THREAD_COUNTS {
        let report = if threads == 1 {
            ConcurrentSim::new(circuit, &learned.universe.sim, CsimVariant::Mv.options())
                .run(patterns)
        } else {
            ParallelSim::new(
                circuit,
                &learned.universe.sim,
                CsimVariant::Mv.options(),
                threads,
                ShardPlan::RoundRobin,
            )
            .run(patterns)
        };
        let expanded = learned.universe.expand_statuses(&report.statuses);
        assert_detection_equivalence(
            &reference.statuses,
            &expanded,
            &format!("{} stuck learned t{threads}", circuit.name()),
        );
    }

    let tl = prune_transition_learned(circuit, &analysis, &graph);
    tl.validate().expect("learned transition invariants");
    let reference =
        TransitionSim::new(circuit, &tl.full, TransitionOptions::default()).run(patterns);
    for threads in THREAD_COUNTS {
        let report = if threads == 1 {
            TransitionSim::new(circuit, &tl.sim, TransitionOptions::default()).run(patterns)
        } else {
            ParallelTransitionSim::new(
                circuit,
                &tl.sim,
                TransitionOptions::default(),
                threads,
                ShardPlan::RoundRobin,
            )
            .run(patterns)
        };
        let expanded = tl.expand_statuses(&report.statuses);
        assert_detection_equivalence(
            &reference.statuses,
            &expanded,
            &format!("{} transition learned t{threads}", circuit.name()),
        );
    }
}

fn check_both(circuit: &Circuit, patterns: usize, seed: u64) {
    let patterns = random_patterns(circuit, patterns, seed);
    check_stuck(circuit, &patterns);
    check_transition(circuit, &patterns);
    check_learned(circuit, &patterns);
}

#[test]
fn pruned_runs_match_full_runs_on_s27() {
    check_both(&cfs_netlist::data::s27(), 128, 11);
}

#[test]
fn pruned_runs_match_full_runs_on_bench_fixtures() {
    for name in ["s298g", "s641g"] {
        let circuit = cfs_netlist::generate::benchmark(name).expect("bundled benchmark");
        check_both(&circuit, 96, 13);
    }
}

#[test]
fn pruned_runs_match_full_runs_on_random_netlists() {
    let specs = [
        CircuitSpec::new("prune_r1", 5, 3, 2, 30, 0xA1),
        CircuitSpec::new("prune_r2", 7, 4, 0, 45, 0xB2),
        CircuitSpec::new("prune_r3", 4, 2, 4, 25, 0xC3),
        CircuitSpec::new("prune_r4", 6, 5, 3, 60, 0xD4),
    ];
    for (i, spec) in specs.iter().enumerate() {
        check_both(&generate(spec), 64, 17 + i as u64);
    }
}

/// Implication learning must prune strictly beyond constant propagation
/// on the bundled fixtures — these circuits carry conflict-untestable
/// faults the base pass cannot see.
#[test]
fn learning_strictly_shrinks_the_universe_on_fixtures() {
    for name in ["s298g", "s641g", "s1238g"] {
        let circuit = cfs_netlist::generate::benchmark(name).expect("bundled benchmark");
        let analysis = analyze_circuit(&circuit);
        let graph = ImplicationGraph::build(&circuit, &analysis, LearnOptions::default());
        let base = prune_stuck_at(&circuit, &analysis);
        let learned = prune_stuck_at_learned(&circuit, &analysis, &graph);
        assert!(
            learned.universe.stats.sim < base.stats.sim,
            "{name}: learning found no conflicts ({} vs {})",
            learned.universe.stats.sim,
            base.stats.sim
        );
        assert!(
            learned.universe.stats.conflict > 0,
            "{name}: conflict counter"
        );
    }
}

/// Pruning must shrink the simulated stuck-at universe on the bundled
/// fixtures: exact collapsing alone merges equivalent faults, and the
/// generated benchmarks also carry statically unexcitable faults.
#[test]
fn pruning_reduces_the_simulated_universe_on_fixtures() {
    for name in ["s298g", "s641g", "s1238g"] {
        let circuit = cfs_netlist::generate::benchmark(name).expect("bundled benchmark");
        let analysis = analyze_circuit(&circuit);
        let pruned = prune_stuck_at(&circuit, &analysis);
        assert!(
            pruned.stats.sim < pruned.stats.full,
            "{name}: {} of {} simulated",
            pruned.stats.sim,
            pruned.stats.full
        );
        assert!(
            pruned.stats.pruned() > 0,
            "{name}: expected statically undetectable faults"
        );
    }
}
