//! Differential equivalence for the two-dimensional (pattern-batch ×
//! fault-shard) scheduler: batched runs must be bit-identical to the
//! serial engines — same per-fault statuses (exact, including detection
//! pattern indices) and the same sorted detection list — for every window
//! size (including one-pattern windows and one whole-run window), thread
//! count, steal schedule, csim variant, and both fault models, on random
//! netlists, with and without static pruning.
//!
//! Also pins the seeded-schedule replay (merge output independent of the
//! task interleaving) and an adversarial partition — one giant shard plus
//! empties and singletons, forcing maximal stealing — as a regression
//! fixture.

use cfs_check::{analyze_circuit, prune_stuck_at, prune_transition};
use cfs_core::{
    detections_of, BatchOptions, ConcurrentSim, CsimVariant, NullProbe, ParallelSim,
    ParallelTransitionSim, ShardPlan, TransitionOptions, TransitionSim,
};
use cfs_faults::{
    collapse_stuck_at, enumerate_stuck_at, enumerate_transition, FaultStatus, PrunedUniverse,
};
use cfs_logic::Logic;
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Window sizes: single-pattern windows, two uneven mid sizes, and `0`
/// (one window spanning the whole run).
const WINDOWS: [usize; 4] = [1, 3, 8, 0];
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// Odd oversharding (more shards than workers, never a multiple) so the
/// steal path actually runs instead of degenerating to static dispatch.
fn shards_for(threads: usize) -> usize {
    threads * 2 - 1
}

/// Serial vs. batched stuck-at runs on one circuit, full matrix.
fn check_stuck_batched(circuit: &Circuit, patterns: &[Vec<Logic>]) {
    let faults = collapse_stuck_at(circuit).representatives;
    for variant in CsimVariant::ALL {
        let mut serial = ConcurrentSim::new(circuit, &faults, variant.options());
        let reference = serial.run(patterns);
        let ref_detections = detections_of(&reference.statuses);
        for window in WINDOWS {
            for threads in THREAD_COUNTS {
                let batch = BatchOptions {
                    window,
                    steal: true,
                    // Vary the victim scan order per cell.
                    steal_seed: 0x1992 ^ (window as u64) << 8 ^ threads as u64,
                };
                let mut par = ParallelSim::with_probes_sharded(
                    circuit,
                    &faults,
                    variant.options(),
                    threads,
                    shards_for(threads),
                    ShardPlan::RoundRobin,
                    None,
                    |_| NullProbe,
                );
                let report = par.run_batched(patterns, &batch);
                assert_eq!(
                    report.statuses,
                    reference.statuses,
                    "{}: {variant} window={window} threads={threads}",
                    circuit.name()
                );
                assert_eq!(
                    par.detections(),
                    ref_detections,
                    "{}: {variant} window={window} threads={threads}",
                    circuit.name()
                );
            }
        }
    }
}

/// Serial vs. batched transition runs on one circuit, full matrix.
fn check_transition_batched(circuit: &Circuit, patterns: &[Vec<Logic>]) {
    let faults = enumerate_transition(circuit);
    let mut serial = TransitionSim::new(circuit, &faults, TransitionOptions::default());
    let reference = serial.run(patterns);
    let ref_detections = detections_of(&reference.statuses);
    for window in WINDOWS {
        for threads in THREAD_COUNTS {
            let batch = BatchOptions {
                window,
                steal: true,
                steal_seed: 0xDAC ^ (window as u64) << 8 ^ threads as u64,
            };
            let mut par = ParallelTransitionSim::with_probes_sharded(
                circuit,
                &faults,
                TransitionOptions::default(),
                threads,
                shards_for(threads),
                ShardPlan::RoundRobin,
                None,
                |_| NullProbe,
            );
            let report = par.run_batched(patterns, &batch);
            assert_eq!(
                report.statuses,
                reference.statuses,
                "{}: transition window={window} threads={threads}",
                circuit.name()
            );
            assert_eq!(
                par.detections(),
                ref_detections,
                "{}: transition window={window} threads={threads}",
                circuit.name()
            );
        }
    }
}

#[test]
fn stuck_at_batched_matches_serial_on_random_netlists() {
    for seed in 0..2u64 {
        let spec = CircuitSpec::new(format!("be{seed}"), 5, 4, 6, 70, 9100 + seed);
        let c = generate(&spec);
        let patterns = random_patterns(&c, 48, seed ^ 0xBA7C4);
        check_stuck_batched(&c, &patterns);
    }
}

#[test]
fn stuck_at_batched_matches_serial_on_a_benchmark() {
    let c = cfs_netlist::generate::benchmark("s298g").expect("known benchmark");
    let patterns = random_patterns(&c, 48, 0x5EED);
    check_stuck_batched(&c, &patterns);
}

#[test]
fn transition_batched_matches_serial_on_random_netlists() {
    for seed in 0..2u64 {
        let spec = CircuitSpec::new(format!("bet{seed}"), 4, 3, 5, 60, 7100 + seed);
        let c = generate(&spec);
        let patterns = random_patterns(&c, 48, seed ^ 0xBA7C5);
        check_transition_batched(&c, &patterns);
    }
}

/// The `--prune` analogue: batched runs over the statically pruned
/// universe, expanded back, must tell the same detection story as a full
/// uncollapsed serial run. Detected entries must match exactly; pruned
/// faults may report `Untestable` where the reference says `Undetected`.
fn assert_detection_equivalence(
    reference: &[FaultStatus],
    expanded: &[FaultStatus],
    context: &str,
) {
    assert_eq!(reference.len(), expanded.len(), "{context}: universe size");
    for (i, (r, e)) in reference.iter().zip(expanded).enumerate() {
        match (r, e) {
            (FaultStatus::Detected { pattern: a }, FaultStatus::Detected { pattern: b }) => {
                assert_eq!(a, b, "{context}: fault {i} first-detection pattern")
            }
            (FaultStatus::Detected { .. }, other) => {
                panic!("{context}: fault {i} detected in full run but {other:?} after pruning")
            }
            (other, FaultStatus::Detected { .. }) => {
                panic!("{context}: fault {i} {other:?} in full run but detected after pruning")
            }
            _ => {}
        }
    }
    assert_eq!(
        detections_of(reference),
        detections_of(expanded),
        "{context}: detection lists"
    );
}

#[test]
fn pruned_batched_stuck_matches_full_serial() {
    let spec = CircuitSpec::new("bep0", 5, 4, 6, 70, 9200);
    let c = generate(&spec);
    let patterns = random_patterns(&c, 48, 0xBA7C6);
    let full = enumerate_stuck_at(&c);
    let analysis = analyze_circuit(&c);
    let pruned: PrunedUniverse<_> = prune_stuck_at(&c, &analysis);
    pruned.validate().expect("pruned universe invariants");
    for variant in CsimVariant::ALL {
        let reference = ConcurrentSim::new(&c, &full, variant.options()).run(&patterns);
        for window in [3, 0] {
            for threads in [2, 7] {
                let batch = BatchOptions {
                    window,
                    steal: true,
                    ..BatchOptions::default()
                };
                let mut par = ParallelSim::with_probes_sharded(
                    &c,
                    &pruned.sim,
                    variant.options(),
                    threads,
                    shards_for(threads),
                    ShardPlan::RoundRobin,
                    None,
                    |_| NullProbe,
                );
                let report = par.run_batched(&patterns, &batch);
                let expanded = pruned.expand_statuses(&report.statuses);
                assert_detection_equivalence(
                    &reference.statuses,
                    &expanded,
                    &format!("{variant} window={window} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn pruned_batched_transition_matches_full_serial() {
    let spec = CircuitSpec::new("bept0", 4, 3, 5, 60, 7200);
    let c = generate(&spec);
    let patterns = random_patterns(&c, 48, 0xBA7C7);
    let full = enumerate_transition(&c);
    let analysis = analyze_circuit(&c);
    let pruned: PrunedUniverse<_> = prune_transition(&c, &analysis);
    pruned.validate().expect("pruned universe invariants");
    let reference = TransitionSim::new(&c, &full, TransitionOptions::default()).run(&patterns);
    for window in [3, 0] {
        for threads in [2, 7] {
            let batch = BatchOptions {
                window,
                steal: true,
                ..BatchOptions::default()
            };
            let mut par = ParallelTransitionSim::with_probes_sharded(
                &c,
                &pruned.sim,
                TransitionOptions::default(),
                threads,
                shards_for(threads),
                ShardPlan::RoundRobin,
                None,
                |_| NullProbe,
            );
            let report = par.run_batched(&patterns, &batch);
            let expanded = pruned.expand_statuses(&report.statuses);
            assert_detection_equivalence(
                &reference.statuses,
                &expanded,
                &format!("transition window={window} threads={threads}"),
            );
        }
    }
}

/// Merge output must be independent of the steal interleaving. The
/// honest version of that claim cannot rely on OS thread timing, so
/// [`ParallelSim::run_seeded`] replays explicit seeded schedules
/// single-threaded: every seed — and the live scheduler with stealing on
/// and off — must produce the same statuses.
#[test]
fn seeded_schedule_replay_is_interleaving_independent() {
    let c = cfs_netlist::generate::benchmark("s298g").expect("known benchmark");
    let faults = collapse_stuck_at(&c).representatives;
    let patterns = random_patterns(&c, 40, 0x51D);
    let options = CsimVariant::Mv.options();
    let reference = ConcurrentSim::new(&c, &faults, options.clone()).run(&patterns);
    let batch = BatchOptions {
        window: 6,
        steal: true,
        ..BatchOptions::default()
    };
    let build = || {
        ParallelSim::with_probes_sharded(
            &c,
            &faults,
            options.clone(),
            4,
            5,
            ShardPlan::RoundRobin,
            None,
            |_| NullProbe,
        )
    };
    for schedule_seed in [1, 0xBEEF, 0x5EED_1992, u64::MAX] {
        let mut par = build();
        let report = par.run_seeded(&patterns, &batch, schedule_seed);
        assert_eq!(
            report.statuses, reference.statuses,
            "seeded replay seed={schedule_seed:#x}"
        );
    }
    for steal in [false, true] {
        let mut par = build();
        let report = par.run_batched(
            &patterns,
            &BatchOptions {
                steal,
                ..batch.clone()
            },
        );
        assert_eq!(report.statuses, reference.statuses, "live steal={steal}");
    }
}

/// Different steal seeds shuffle the victim scan order; detections must
/// not care.
#[test]
fn steal_seed_does_not_change_detections() {
    let c = cfs_netlist::generate::benchmark("s298g").expect("known benchmark");
    let faults = enumerate_transition(&c);
    let patterns = random_patterns(&c, 40, 0x51E);
    let mut reports = Vec::new();
    for steal_seed in [1, 2, 0xFEED_FACE] {
        let mut par = ParallelTransitionSim::with_probes_sharded(
            &c,
            &faults,
            TransitionOptions::default(),
            4,
            7,
            ShardPlan::RoundRobin,
            None,
            |_| NullProbe,
        );
        let batch = BatchOptions {
            window: 5,
            steal: true,
            steal_seed,
        };
        reports.push(par.run_batched(&patterns, &batch).statuses);
    }
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}

/// Regression fixture: an adversarial partition no [`ShardPlan`] would
/// produce — one giant shard holding nearly everything, plus empties and
/// singletons — under one-pattern windows and stealing. The giant shard
/// is the permanent long pole, so idle workers steal constantly; the run
/// must terminate and stay serial-identical.
#[test]
fn adversarial_giant_shard_partition_is_serial_identical() {
    let c = cfs_netlist::generate::benchmark("s298g").expect("known benchmark");
    let faults = collapse_stuck_at(&c).representatives;
    let n = faults.len();
    assert!(n > 8, "fixture needs a non-trivial universe");
    let patterns = random_patterns(&c, 32, 0xADE);
    let options = CsimVariant::Mv.options();
    let reference = ConcurrentSim::new(&c, &faults, options.clone()).run(&patterns);
    // Shard 0: everything but the last three faults. Then two empties,
    // three singletons, and another empty — an exact cover of 0..n.
    let parts: Vec<Vec<usize>> = vec![
        (0..n - 3).collect(),
        Vec::new(),
        Vec::new(),
        vec![n - 3],
        vec![n - 2],
        vec![n - 1],
        Vec::new(),
    ];
    for steal_seed in [3, 0x0DD] {
        let mut par =
            ParallelSim::with_partition(&c, &faults, options.clone(), 4, parts.clone(), |_| {
                NullProbe
            });
        let batch = BatchOptions {
            window: 1,
            steal: true,
            steal_seed,
        };
        let report = par.run_batched(&patterns, &batch);
        assert_eq!(
            report.statuses, reference.statuses,
            "adversarial partition steal_seed={steal_seed}"
        );
        assert_eq!(
            par.detections(),
            detections_of(&reference.statuses),
            "adversarial partition steal_seed={steal_seed}"
        );
    }
}
