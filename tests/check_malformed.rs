//! Property tests for the `cfs-check` static analyses on malformed
//! netlists: a clean generated circuit produces zero findings, and a
//! single seeded defect — a combinational cycle, an undriven net, or a
//! duplicate definition — is flagged exactly once under its own rule
//! code, never smeared across codes or reported per-reference.

use proptest::prelude::*;

use cfs_check::{check_bench_source, RuleCode, Severity};
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::write_bench;

/// A small well-formed synchronous circuit, as `.bench` text.
fn clean_source(seed: u64, inputs: usize, dffs: usize, gates: usize) -> String {
    let spec = CircuitSpec::new(format!("cm{seed}"), inputs, 2, dffs, gates, 0x51ac + seed);
    write_bench(&generate(&spec))
}

fn errors_with(report: &cfs_check::Report, code: RuleCode) -> usize {
    report.with_code(code).count()
}

fn total_errors(report: &cfs_check::Report) -> usize {
    report.count(Severity::Error)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated circuits carry no error-severity findings. (Small random
    /// specs may leave a gate unreachable — a legitimate warning — but
    /// nothing that gates simulation; the named ISCAS-style benchmarks
    /// are asserted fully clean in `tests/check_examples.rs`.)
    #[test]
    fn clean_circuits_have_no_errors(
        seed in 0u64..1000,
        inputs in 3usize..8,
        dffs in 2usize..6,
        gates in 10usize..60,
    ) {
        let src = clean_source(seed, inputs, dffs, gates);
        let report = check_bench_source("clean", &src);
        prop_assert_eq!(
            total_errors(&report), 0,
            "unexpected errors:\n{}",
            report.render_text()
        );
    }

    /// Appending a two-gate combinational loop yields exactly one `N001`
    /// and no other error-severity findings.
    #[test]
    fn seeded_cycle_is_flagged_exactly_once(
        seed in 0u64..1000,
        gates in 10usize..40,
    ) {
        let mut src = clean_source(seed, 4, 3, gates);
        src.push_str("cyca = NOT(cycb)\ncycb = BUF(cyca)\n");
        let report = check_bench_source("cycle", &src);
        prop_assert_eq!(
            errors_with(&report, RuleCode::CombinationalCycle), 1,
            "{}", report.render_text()
        );
        prop_assert_eq!(total_errors(&report), 1, "{}", report.render_text());
    }

    /// Referencing a never-defined net yields exactly one `N002`, even
    /// when the ghost net is read twice.
    #[test]
    fn seeded_undriven_net_is_flagged_exactly_once(
        seed in 0u64..1000,
        gates in 10usize..40,
    ) {
        let mut src = clean_source(seed, 4, 3, gates);
        src.push_str("gdeada = NOT(ghostnet)\ngdeadb = BUF(ghostnet)\n");
        let report = check_bench_source("undriven", &src);
        prop_assert_eq!(
            errors_with(&report, RuleCode::UndrivenNet), 1,
            "{}", report.render_text()
        );
        prop_assert_eq!(total_errors(&report), 1, "{}", report.render_text());
    }

    /// Duplicating one definition line yields exactly one `N005`.
    #[test]
    fn seeded_duplicate_definition_is_flagged_exactly_once(
        seed in 0u64..1000,
        gates in 10usize..40,
        pick in any::<prop::sample::Index>(),
    ) {
        let src = clean_source(seed, 4, 3, gates);
        let defs: Vec<&str> = src
            .lines()
            .filter(|l| l.contains('=') && !l.contains("DFF"))
            .collect();
        prop_assume!(!defs.is_empty());
        let dup = defs[pick.index(defs.len())];
        let mut src = src.clone();
        src.push_str(dup);
        src.push('\n');
        let report = check_bench_source("dup", &src);
        prop_assert_eq!(
            errors_with(&report, RuleCode::MultiplyDrivenNet), 1,
            "{}", report.render_text()
        );
        prop_assert_eq!(total_errors(&report), 1, "{}", report.render_text());
    }
}
