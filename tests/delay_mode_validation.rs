//! Cross-validation of the arbitrary-delay concurrent fault simulator:
//! under a clock period long enough for the logic to settle, it must
//! detect exactly what the zero-delay simulators (and hence the serial
//! oracle) detect, for arbitrary per-gate delay assignments.

use cfs_baselines::SerialSim;
use cfs_core::DelayCsim;
use cfs_faults::enumerate_stuck_at;
use cfs_goodsim::DelayModel;
use cfs_logic::Logic;
use cfs_netlist::generate::{generate, CircuitSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn delay_concurrent_matches_serial_on_generated_circuits() {
    for seed in 0..4u64 {
        let spec = CircuitSpec::new(format!("dv{seed}"), 4, 3, 5, 45, 9000 + seed);
        let c = generate(&spec);
        let faults = enumerate_stuck_at(&c);
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns: Vec<Vec<Logic>> = (0..25)
            .map(|_| {
                (0..c.num_inputs())
                    .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let delays = DelayModel::from_fn(&c, |id| 1 + (id.index() as u32 * 7 % 9));
        let mut dsim = DelayCsim::new(&c, delays, &faults);
        let dreport = dsim.run_clocked(&patterns, 10_000);
        let reference = SerialSim::new(&c, &faults).run(&patterns);
        for (i, (a, b)) in reference.statuses.iter().zip(&dreport.statuses).enumerate() {
            assert_eq!(
                a.is_detected(),
                b.is_detected(),
                "seed {seed}, fault {i}: {}",
                faults[i].describe(&c)
            );
        }
    }
}

#[test]
fn unit_delay_and_skewed_delay_agree_on_detection() {
    let spec = CircuitSpec::new("dv-skew", 5, 4, 6, 60, 1234);
    let c = generate(&spec);
    let faults = enumerate_stuck_at(&c);
    let mut rng = StdRng::seed_from_u64(99);
    let patterns: Vec<Vec<Logic>> = (0..30)
        .map(|_| {
            (0..c.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    let mut unit = DelayCsim::new(&c, DelayModel::unit(&c), &faults);
    let r1 = unit.run_clocked(&patterns, 10_000);
    let delays = DelayModel::from_fn(&c, |id| 1 + (id.index() as u32 % 17));
    let mut skew = DelayCsim::new(&c, delays, &faults);
    let r2 = skew.run_clocked(&patterns, 10_000);
    for (i, (a, b)) in r1.statuses.iter().zip(&r2.statuses).enumerate() {
        assert_eq!(
            a.is_detected(),
            b.is_detected(),
            "fault {i} (delays must not matter at a slow clock)"
        );
    }
    assert!(r1.detected() > 0);
}
