//! Layout-refactor differential suite: the cache-conscious engine core
//! (contiguous-run SoA arena, CSR netlist traversal, dense levelized
//! scheduler) is a pure representation change, so on arbitrary generated
//! netlists every concurrent variant — under both fault models and under
//! fault sharding — must report exactly what the straightforward
//! reference simulators report.
//!
//! This is the regression net for the data-layout work specifically: the
//! oracles in `cfs-baselines` share none of the arena/CSR/scheduler code,
//! so a bug in run contiguity, terminal handling, compaction, or CSR
//! adjacency shows up here as a status mismatch rather than silently
//! corrupting fault lists.

use proptest::prelude::*;

use cfs_baselines::{SerialSim, SerialTransitionSim};
use cfs_core::{
    ConcurrentSim, CsimVariant, ParallelSim, ParallelTransitionSim, ShardPlan, TransitionOptions,
    TransitionSim,
};
use cfs_faults::{collapse_stuck_at, enumerate_transition};
use cfs_logic::Logic;
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::Circuit;

/// Thread counts exercised against every oracle run: serial layout code
/// (1) and a sharded run that forces arena state to be rebuilt per shard.
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![Just(Logic::Zero), Just(Logic::One), Just(Logic::X)]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (3usize..6, 2usize..5, 1usize..7, 20usize..90, any::<u64>()).prop_map(
        |(pi, po, dff, gates, seed)| {
            generate(&CircuitSpec::new("layout", pi, po, dff, gates, seed))
        },
    )
}

fn arb_circuit_and_patterns() -> impl Strategy<Value = (Circuit, Vec<Vec<Logic>>)> {
    arb_circuit().prop_flat_map(|c| {
        let n = c.num_inputs();
        let patterns = prop::collection::vec(prop::collection::vec(arb_logic(), n), 6..24);
        (Just(c), patterns)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Stuck-at model: all four concurrent variants, serial and sharded,
    /// agree with the serial fault-at-a-time oracle on detection status
    /// for every collapsed fault.
    #[test]
    fn stuck_at_layout_matches_oracle((circuit, patterns) in arb_circuit_and_patterns()) {
        let faults = collapse_stuck_at(&circuit).representatives;
        let oracle = SerialSim::new(&circuit, &faults).run(&patterns);
        let expected: Vec<bool> = oracle.statuses.iter().map(|s| s.is_detected()).collect();
        for variant in CsimVariant::ALL {
            let mut sim = ConcurrentSim::new(&circuit, &faults, variant.options());
            let serial_statuses = sim.run(&patterns).statuses;
            let got: Vec<bool> = serial_statuses.iter().map(|s| s.is_detected()).collect();
            prop_assert_eq!(&got, &expected, "{} vs oracle on {}", variant, circuit.name());
            for threads in THREAD_COUNTS {
                let mut par = ParallelSim::new(
                    &circuit,
                    &faults,
                    variant.options(),
                    threads,
                    ShardPlan::RoundRobin,
                );
                let report = par.run(&patterns);
                prop_assert_eq!(
                    &report.statuses,
                    &serial_statuses,
                    "{} threads={} on {}",
                    variant,
                    threads,
                    circuit.name()
                );
            }
        }
    }

    /// Transition model: the delay-mode engine (which owns its own arena
    /// and commit lists) agrees with the two-pattern reference simulator,
    /// serially and sharded.
    #[test]
    fn transition_layout_matches_oracle((circuit, patterns) in arb_circuit_and_patterns()) {
        let faults = enumerate_transition(&circuit);
        let oracle = SerialTransitionSim::new(&circuit, &faults).run(&patterns);
        let expected: Vec<bool> = oracle.statuses.iter().map(|s| s.is_detected()).collect();
        let mut sim = TransitionSim::new(&circuit, &faults, TransitionOptions::default());
        let serial_statuses = sim.run(&patterns).statuses;
        let got: Vec<bool> = serial_statuses.iter().map(|s| s.is_detected()).collect();
        prop_assert_eq!(&got, &expected, "transition vs oracle on {}", circuit.name());
        for threads in THREAD_COUNTS {
            let mut par = ParallelTransitionSim::new(
                &circuit,
                &faults,
                TransitionOptions::default(),
                threads,
                ShardPlan::RoundRobin,
            );
            let report = par.run(&patterns);
            prop_assert_eq!(
                &report.statuses,
                &serial_statuses,
                "transition threads={} on {}",
                threads,
                circuit.name()
            );
        }
    }
}

/// Long-run arena churn: enough patterns on a feedback-heavy circuit to
/// cross the compaction threshold repeatedly; statuses must stay equal to
/// a fresh run over the same patterns split into two sessions of the same
/// engine construction (compaction is invisible to results).
#[test]
fn compaction_under_churn_is_invisible() {
    let c = cfs_netlist::generate::benchmark("s526g").expect("known benchmark");
    let faults = collapse_stuck_at(&c).representatives;
    let patterns: Vec<Vec<Logic>> = (0..400)
        .map(|i| {
            (0..c.num_inputs())
                .map(|k| Logic::from_bool((i * 7 + k * 13) % 11 < 5))
                .collect()
        })
        .collect();
    let oracle = SerialSim::new(&c, &faults).run(&patterns);
    for variant in CsimVariant::ALL {
        let run = |_| {
            ConcurrentSim::new(&c, &faults, variant.options())
                .run(&patterns)
                .statuses
        };
        let whole = run(0);
        assert_eq!(whole, run(1), "{variant}: churn run is not deterministic");
        for (i, (a, b)) in whole.iter().zip(&oracle.statuses).enumerate() {
            assert_eq!(
                a.is_detected(),
                b.is_detected(),
                "{variant}: fault {i} diverged under churn"
            );
        }
    }
}
