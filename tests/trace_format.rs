//! Trace-format validation and tracing-transparency tests.
//!
//! The `cfs-trace` recorder is an observer: attaching it must not change
//! a single simulation result. These tests pin (a) the structural schema
//! of the exported Chrome Trace / Perfetto JSON and of the `--stats-json`
//! lines, and (b) the differential guarantee that detections are
//! bit-identical with tracing on and off, serial and fault-sharded.

use std::time::Instant;

use cfs_core::{
    detections_of, BatchOptions, ConcurrentSim, CsimVariant, ParallelSim, ParallelTransitionSim,
    ShardPlan, TransitionOptions, TransitionSim,
};
use cfs_faults::{collapse_stuck_at, enumerate_transition};
use cfs_logic::Logic;
use cfs_netlist::Circuit;
use cfs_telemetry::{JsonValue, JsonlWriter, MetricsSnapshot, PairProbe, Phase, SimMetrics};
use cfs_trace::{
    validate_chrome_trace, write_chrome_trace, write_chrome_trace_with_sched, SchedSpan,
    SchedSteal, SchedTrack, TraceConfig, TraceEvent, TraceRecorder, TrackTrace,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type TraceProbe = PairProbe<SimMetrics, TraceRecorder>;

fn circuit() -> Circuit {
    cfs_netlist::generate::benchmark("s298g").expect("built-in benchmark")
}

fn patterns(c: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..c.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// Runs a traced stuck-at simulation and exports its Chrome trace.
fn traced_stuck_run(threads: usize) -> (String, Vec<cfs_faults::FaultStatus>) {
    let c = circuit();
    let faults = collapse_stuck_at(&c).representatives;
    let pats = patterns(&c, 64, 7);
    let epoch = Instant::now();
    let mut sim = ParallelSim::with_probes(
        &c,
        &faults,
        CsimVariant::Mv.options(),
        threads,
        ShardPlan::RoundRobin,
        None,
        |_| -> TraceProbe {
            PairProbe(
                SimMetrics::new(),
                TraceRecorder::new(epoch, TraceConfig::default()),
            )
        },
    );
    let report = sim.run(&pats);
    let shard_data: Vec<(Vec<TraceEvent>, Vec<usize>)> = sim
        .shard_probes()
        .map(|(p, map)| (p.1.events().copied().collect(), map.to_vec()))
        .collect();
    let tracks: Vec<TrackTrace<'_>> = shard_data
        .iter()
        .enumerate()
        .map(|(k, (events, map))| TrackTrace {
            label: format!("shard {k}"),
            events,
            fault_map: Some(map),
        })
        .collect();
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, "trace_format test", &tracks).expect("in-memory write");
    (String::from_utf8(buf).expect("utf-8 JSON"), report.statuses)
}

#[test]
fn chrome_trace_schema_validates_serial_and_sharded() {
    for threads in [1, 4] {
        let (text, _) = traced_stuck_run(threads);
        let stats = validate_chrome_trace(&text)
            .unwrap_or_else(|e| panic!("threads={threads}: invalid trace: {e}"));
        assert_eq!(
            stats.metadata,
            threads as u64 + 1,
            "process + one thread-name record per shard"
        );
        assert!(stats.pattern_spans >= 64 * threads as u64, "{stats:?}");
        assert!(stats.spans > stats.pattern_spans, "phase spans present");
        assert!(stats.divergences > 0, "at least one divergence instant");
        assert!(stats.convergences > 0, "at least one convergence instant");
        assert!(stats.counters > 0, "counter track present");
    }
}

#[test]
fn sharded_trace_remaps_fault_ids_into_the_global_universe() {
    let c = circuit();
    let num_faults = collapse_stuck_at(&c).representatives.len();
    let (text, _) = traced_stuck_run(4);
    let doc = JsonValue::parse(&text).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
    let mut fault_ids: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("args")?.get("fault")?.as_u64())
        .collect();
    assert!(!fault_ids.is_empty(), "fault instants present");
    fault_ids.sort_unstable();
    fault_ids.dedup();
    assert!(
        *fault_ids.last().unwrap() < num_faults as u64,
        "every fault id within the global universe"
    );
    // Round-robin over 4 shards: local ids 0..n/4 would leave everything
    // below n/4; remapped ids must reach beyond it.
    assert!(
        *fault_ids.last().unwrap() >= (num_faults / 4) as u64,
        "ids are global, not shard-local"
    );
}

#[test]
fn stats_json_lines_parse_with_expected_schema() {
    let c = circuit();
    let faults = collapse_stuck_at(&c).representatives;
    let pats = patterns(&c, 32, 3);
    let mut sim = ConcurrentSim::instrumented(&c, &faults, CsimVariant::Mv.options());
    let report = sim.run(&pats);
    let mut snap = sim.snapshot();
    snap.cpu_seconds = report.cpu.as_secs_f64();
    snap.trace_events = 123;
    snap.trace_dropped = 1;
    let mut w = JsonlWriter::new(Vec::new());
    for record in sim.metrics().records() {
        w.write_pattern(record).unwrap();
    }
    w.write_summary(&snap).unwrap();
    let text = String::from_utf8(w.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 33, "32 pattern lines + summary");
    for (i, line) in lines.iter().enumerate() {
        let v = JsonValue::parse(line).unwrap_or_else(|e| panic!("line {i}: {e}"));
        let ty = v.get("type").and_then(JsonValue::as_str).unwrap();
        if i < 32 {
            assert_eq!(ty, "pattern");
            assert_eq!(v.get("pattern").and_then(JsonValue::as_u64), Some(i as u64));
            for key in ["activations", "divergences", "convergences", "detected"] {
                assert!(v.get(key).and_then(JsonValue::as_u64).is_some(), "{key}");
            }
        } else {
            assert_eq!(ty, "summary");
            assert_eq!(
                v.get("simulator").and_then(JsonValue::as_str),
                Some("csim-MV")
            );
            assert_eq!(v.get("trace_events").and_then(JsonValue::as_u64), Some(123));
            assert_eq!(v.get("trace_dropped").and_then(JsonValue::as_u64), Some(1));
            assert!(v.get("phases").is_some());
            assert!(v.get("phase_calls").is_some());
            // Scheduler counters only appear on scheduled runs.
            assert!(v.get("windows").is_none(), "serial run: no windows key");
            assert!(v.get("steals").is_none(), "serial run: no steals key");
        }
    }
}

#[test]
fn stuck_detections_identical_tracing_on_and_off() {
    let c = circuit();
    let faults = collapse_stuck_at(&c).representatives;
    let pats = patterns(&c, 64, 7);
    let mut plain = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
    let baseline = plain.run(&pats);
    for threads in [1, 4] {
        let (_, statuses) = traced_stuck_run(threads);
        assert_eq!(
            statuses, baseline.statuses,
            "threads={threads}: tracing changed per-fault statuses"
        );
        assert_eq!(
            detections_of(&statuses),
            detections_of(&baseline.statuses),
            "threads={threads}: tracing changed the detection list"
        );
    }
}

#[test]
fn transition_detections_identical_tracing_on_and_off() {
    let c = circuit();
    let faults = enumerate_transition(&c);
    let pats = patterns(&c, 64, 11);
    let mut plain = TransitionSim::new(&c, &faults, TransitionOptions::default());
    let baseline = plain.run(&pats);
    for threads in [1, 4] {
        let epoch = Instant::now();
        let mut sim = ParallelTransitionSim::with_probes(
            &c,
            &faults,
            TransitionOptions::default(),
            threads,
            ShardPlan::RoundRobin,
            None,
            |_| -> TraceProbe {
                PairProbe(
                    SimMetrics::new(),
                    TraceRecorder::new(epoch, TraceConfig::default()),
                )
            },
        );
        let report = sim.run(&pats);
        assert_eq!(
            report.statuses, baseline.statuses,
            "threads={threads}: tracing changed transition statuses"
        );
    }
}

/// Runs a batched (pattern-window × fault-shard) traced run and exports
/// its Chrome trace with the scheduler's worker tracks.
fn traced_batched_run(
    threads: usize,
    shards: usize,
    window: usize,
) -> (String, Vec<cfs_faults::FaultStatus>, usize) {
    let c = circuit();
    let faults = collapse_stuck_at(&c).representatives;
    let pats = patterns(&c, 64, 7);
    let epoch = Instant::now();
    let mut sim = ParallelSim::with_probes_sharded(
        &c,
        &faults,
        CsimVariant::Mv.options(),
        threads,
        shards,
        ShardPlan::RoundRobin,
        None,
        |_| -> TraceProbe {
            PairProbe(
                SimMetrics::new(),
                TraceRecorder::new(epoch, TraceConfig::default()),
            )
        },
    );
    let batch = BatchOptions {
        window,
        steal: true,
        ..BatchOptions::default()
    };
    let report = sim.run_batched(&pats, &batch);
    let st = sim.sched_stats().expect("batched run records stats");
    let sched = SchedTrack {
        workers: st.workers as u32,
        spans: st
            .spans
            .iter()
            .map(|s| SchedSpan {
                worker: s.worker,
                shard: s.shard,
                window: s.window,
                patterns: s.patterns,
                start: s.start_micros,
                end: s.end_micros,
            })
            .collect(),
        steals: st
            .steal_events
            .iter()
            .map(|e| SchedSteal {
                worker: e.worker,
                victim: e.victim,
                shard: e.shard,
                window: e.window,
                ts: e.ts_micros,
            })
            .collect(),
    };
    let windows = st.windows;
    let shard_data: Vec<(Vec<TraceEvent>, Vec<usize>)> = sim
        .shard_probes()
        .map(|(p, map)| (p.1.events().copied().collect(), map.to_vec()))
        .collect();
    let tracks: Vec<TrackTrace<'_>> = shard_data
        .iter()
        .enumerate()
        .map(|(k, (events, map))| TrackTrace {
            label: format!("shard {k}"),
            events,
            fault_map: Some(map),
        })
        .collect();
    let mut buf = Vec::new();
    write_chrome_trace_with_sched(&mut buf, "trace_format test", &tracks, Some(&sched))
        .expect("in-memory write");
    (
        String::from_utf8(buf).expect("utf-8 JSON"),
        report.statuses,
        windows,
    )
}

#[test]
fn batched_trace_schema_adds_worker_tracks_and_stays_bit_identical() {
    let c = circuit();
    let faults = collapse_stuck_at(&c).representatives;
    let pats = patterns(&c, 64, 7);
    let baseline = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options()).run(&pats);
    let (threads, shards, window) = (2, 5, 9);
    let (text, statuses, windows) = traced_batched_run(threads, shards, window);
    assert_eq!(windows, 64usize.div_ceil(window), "window partition count");
    let stats = validate_chrome_trace(&text).unwrap_or_else(|e| panic!("invalid trace: {e}"));
    assert_eq!(
        stats.metadata,
        1 + shards as u64 + threads as u64,
        "process + shard tracks + worker tracks"
    );
    assert_eq!(
        stats.task_spans,
        (shards * windows) as u64,
        "one task span per (shard × window)"
    );
    assert!(
        stats.pattern_spans >= 64 * shards as u64,
        "every shard still records every pattern: {stats:?}"
    );
    assert_eq!(
        statuses, baseline.statuses,
        "batched tracing changed per-fault statuses"
    );
}

/// Per-phase *wall times* are schedule-dependent, but per-phase
/// *invocation counts* are a fact of the simulation itself: with the
/// fault partition fixed, every (pattern × shard) runs each phase the
/// same number of times no matter how many workers execute it, how the
/// pattern sequence is windowed, or what the steal schedule did. This is
/// the machine-checkable face of the `--stats` phase table under merges.
#[test]
fn phase_call_counts_are_schedule_invariant() {
    let c = circuit();
    let faults = collapse_stuck_at(&c).representatives;
    let pats = patterns(&c, 48, 13);
    let shards = 4;
    let snapshot_of = |threads: usize, batch: Option<BatchOptions>| -> MetricsSnapshot {
        let mut sim = ParallelSim::with_probes_sharded(
            &c,
            &faults,
            CsimVariant::Mv.options(),
            threads,
            shards,
            ShardPlan::RoundRobin,
            None,
            |_| SimMetrics::new(),
        );
        match batch {
            Some(b) => sim.run_batched(&pats, &b),
            None => sim.run(&pats),
        };
        sim.snapshot()
    };
    let reference = snapshot_of(1, None);
    let runs = [
        snapshot_of(2, None),
        snapshot_of(4, None),
        snapshot_of(
            1,
            Some(BatchOptions {
                window: 5,
                steal: true,
                ..BatchOptions::default()
            }),
        ),
        snapshot_of(
            4,
            Some(BatchOptions {
                window: 7,
                steal: true,
                ..BatchOptions::default()
            }),
        ),
        snapshot_of(
            4,
            Some(BatchOptions {
                window: 0,
                steal: false,
                ..BatchOptions::default()
            }),
        ),
    ];
    for (k, snap) in runs.iter().enumerate() {
        for phase in Phase::ALL {
            assert_eq!(
                snap.phases.count(phase),
                reference.phases.count(phase),
                "run {k}: phase {} call count drifted under the scheduler",
                phase.name()
            );
        }
    }
}

/// The after-window callback is the CLI's milestone hook: cumulative done
/// counts must walk the exact window partition, and the per-shard
/// per-pattern records it merges must match the serial instrumented run —
/// that is what makes `--trace-every` output identical for every thread
/// count and window size.
#[test]
fn window_milestones_walk_the_partition_and_merge_to_serial_records() {
    let c = circuit();
    let faults = collapse_stuck_at(&c).representatives;
    let pats = patterns(&c, 40, 17);
    let mut serial = ConcurrentSim::instrumented(&c, &faults, CsimVariant::Mv.options());
    serial.run(&pats);
    let serial_detected: Vec<u64> = serial
        .metrics()
        .records()
        .iter()
        .map(|r| r.counters.detected)
        .collect();
    for window in [1, 6, 0] {
        let mut sim = ParallelSim::with_probes_sharded(
            &c,
            &faults,
            CsimVariant::Mv.options(),
            3,
            5,
            ShardPlan::RoundRobin,
            None,
            |_| SimMetrics::new(),
        );
        let mut milestones = Vec::new();
        sim.run_batched_with(
            &pats,
            &BatchOptions {
                window,
                steal: true,
                ..BatchOptions::default()
            },
            |_, done| milestones.push(done),
        );
        let expected: Vec<usize> = if window == 0 {
            vec![40]
        } else {
            (1..=40usize.div_ceil(window))
                .map(|k| (k * window).min(40))
                .collect()
        };
        assert_eq!(milestones, expected, "window={window}: milestone walk");
        // Per-pattern detected counts, summed across shards, must equal
        // the serial per-pattern records.
        let merged: Vec<u64> = (0..pats.len())
            .map(|p| {
                sim.shard_metrics()
                    .map(|m| m.records()[p].counters.detected)
                    .sum()
            })
            .collect();
        assert_eq!(merged, serial_detected, "window={window}: merged records");
    }
}

#[test]
fn ring_overflow_drops_oldest_but_keeps_exact_node_totals() {
    let c = circuit();
    let faults = collapse_stuck_at(&c).representatives;
    let pats = patterns(&c, 64, 7);
    let big = {
        let mut sim = ConcurrentSim::with_probe(
            &c,
            &faults,
            CsimVariant::V.options(),
            TraceRecorder::new(Instant::now(), TraceConfig::default()),
        );
        sim.run(&pats);
        sim.probe().clone()
    };
    let tiny = {
        let mut sim = ConcurrentSim::with_probe(
            &c,
            &faults,
            CsimVariant::V.options(),
            TraceRecorder::new(
                Instant::now(),
                TraceConfig {
                    capacity: 64,
                    quiescence_window: 32,
                },
            ),
        );
        sim.run(&pats);
        sim.probe().clone()
    };
    assert_eq!(big.dropped_events(), 0, "default ring holds the whole run");
    assert!(tiny.dropped_events() > 0, "tiny ring overflowed");
    assert_eq!(tiny.len(), 64, "ring bounded at capacity");
    assert_eq!(
        tiny.recorded_events(),
        big.recorded_events(),
        "recorded counter unaffected by overflow"
    );
    let totals_big: Vec<u64> = big.node_activity().iter().map(|a| a.total()).collect();
    let totals_tiny: Vec<u64> = tiny.node_activity().iter().map(|a| a.total()).collect();
    assert_eq!(
        totals_big, totals_tiny,
        "per-node totals are overflow-exact"
    );
}
