//! Differential equivalence: the fault-sharded parallel simulators must be
//! byte-identical to the serial engines — same per-fault statuses (exact,
//! including detection pattern indices and untestability) and the same
//! sorted detection list — for every thread count, shard plan, csim
//! variant, and both fault models, on randomly generated netlists.
//!
//! Also property-tests the [`ShardPlan`] partition invariant (every fault
//! in exactly one shard) and pins the deterministic merge order.

use proptest::prelude::*;

use cfs_core::{
    detections_of, ConcurrentSim, CsimVariant, ParallelSim, ParallelTransitionSim, ShardPlan,
    TransitionOptions, TransitionSim,
};
use cfs_faults::{collapse_stuck_at, enumerate_transition, FaultStatus};
use cfs_logic::Logic;
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// Serial vs. sharded stuck-at runs on one circuit: statuses and the
/// derived detection list must match exactly.
fn check_stuck_equivalence(circuit: &Circuit, patterns: &[Vec<Logic>], plan: ShardPlan) {
    let faults = collapse_stuck_at(circuit).representatives;
    for variant in CsimVariant::ALL {
        let mut serial = ConcurrentSim::new(circuit, &faults, variant.options());
        let reference = serial.run(patterns);
        let ref_detections = detections_of(&reference.statuses);
        for threads in THREAD_COUNTS {
            let mut par = ParallelSim::new(circuit, &faults, variant.options(), threads, plan);
            let report = par.run(patterns);
            assert_eq!(
                report.statuses,
                reference.statuses,
                "{}: {variant} threads={threads} plan={plan}",
                circuit.name()
            );
            assert_eq!(
                par.detections(),
                ref_detections,
                "{}: {variant} threads={threads} plan={plan}",
                circuit.name()
            );
        }
    }
}

/// Serial vs. sharded transition runs on one circuit.
fn check_transition_equivalence(circuit: &Circuit, patterns: &[Vec<Logic>], plan: ShardPlan) {
    let faults = enumerate_transition(circuit);
    let mut serial = TransitionSim::new(circuit, &faults, TransitionOptions::default());
    let reference = serial.run(patterns);
    for threads in THREAD_COUNTS {
        let mut par = ParallelTransitionSim::new(
            circuit,
            &faults,
            TransitionOptions::default(),
            threads,
            plan,
        );
        let report = par.run(patterns);
        assert_eq!(
            report.statuses,
            reference.statuses,
            "{}: transition threads={threads} plan={plan}",
            circuit.name()
        );
    }
}

#[test]
fn stuck_at_parallel_matches_serial_on_random_netlists() {
    for seed in 0..4u64 {
        let spec = CircuitSpec::new(format!("pe{seed}"), 5, 4, 6, 70, 9000 + seed);
        let c = generate(&spec);
        let patterns = random_patterns(&c, 40, seed ^ 0xC0FFEE);
        let plan = ShardPlan::ALL[seed as usize % ShardPlan::ALL.len()];
        check_stuck_equivalence(&c, &patterns, plan);
    }
}

#[test]
fn transition_parallel_matches_serial_on_random_netlists() {
    for seed in 0..4u64 {
        let spec = CircuitSpec::new(format!("pet{seed}"), 4, 3, 5, 60, 7000 + seed);
        let c = generate(&spec);
        let patterns = random_patterns(&c, 40, seed ^ 0xDEC0DE);
        let plan = ShardPlan::ALL[seed as usize % ShardPlan::ALL.len()];
        check_transition_equivalence(&c, &patterns, plan);
    }
}

#[test]
fn all_plans_agree_on_a_benchmark_circuit() {
    let c = cfs_netlist::generate::benchmark("s526g").expect("known benchmark");
    let patterns = random_patterns(&c, 60, 0x5EED);
    for plan in ShardPlan::ALL {
        check_stuck_equivalence(&c, &patterns, plan);
    }
}

/// Pins the merge order: detections come out sorted by pattern first, then
/// by global fault index, with ties broken deterministically — the
/// contract the CLI `--detections` dump and any downstream diffing rely
/// on.
#[test]
fn merge_order_regression() {
    let statuses = vec![
        FaultStatus::Detected { pattern: 9 },  // fault 0
        FaultStatus::Untestable,               // fault 1
        FaultStatus::Detected { pattern: 2 },  // fault 2
        FaultStatus::Undetected,               // fault 3
        FaultStatus::Detected { pattern: 2 },  // fault 4
        FaultStatus::Detected { pattern: 0 },  // fault 5
        FaultStatus::Detected { pattern: 11 }, // fault 6
        FaultStatus::Detected { pattern: 2 },  // fault 7
    ];
    assert_eq!(
        detections_of(&statuses),
        vec![(5, 0), (2, 2), (4, 2), (7, 2), (0, 9), (6, 11)],
        "detections must be sorted by (pattern, fault id)"
    );
    // And the list is a pure function of the statuses: permutation-proof
    // by construction, so recomputing yields the identical vector.
    assert_eq!(detections_of(&statuses), detections_of(&statuses));
}

/// The parallel report is stable run-to-run (thread scheduling must not
/// leak into results): two 4-thread runs produce identical statuses.
#[test]
fn parallel_runs_are_reproducible() {
    let c = cfs_netlist::generate::benchmark("s641g").expect("known benchmark");
    let faults = collapse_stuck_at(&c).representatives;
    let patterns = random_patterns(&c, 50, 0xAB1E);
    let run = |plan| {
        let mut sim = ParallelSim::new(&c, &faults, CsimVariant::Mv.options(), 4, plan);
        sim.run(&patterns).statuses
    };
    for plan in ShardPlan::ALL {
        assert_eq!(run(plan), run(plan), "{plan}");
    }
    // Different plans also agree with each other.
    assert_eq!(run(ShardPlan::RoundRobin), run(ShardPlan::Contiguous));
    assert_eq!(run(ShardPlan::RoundRobin), run(ShardPlan::LevelAware));
}

fn arb_plan() -> impl Strategy<Value = ShardPlan> {
    prop_oneof![
        Just(ShardPlan::RoundRobin),
        Just(ShardPlan::Contiguous),
        Just(ShardPlan::LevelAware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every shard plan is an exact cover of the fault list: no fault is
    /// lost, none is duplicated, and shard-local order stays ascending so
    /// local fault ids map monotonically to global indices.
    #[test]
    fn shard_partition_is_an_exact_cover(
        plan in arb_plan(),
        levels in prop::collection::vec(0u32..64, 0..200),
        shards in 1usize..12,
    ) {
        let parts = plan.partition(&levels, shards);
        prop_assert_eq!(parts.len(), shards);
        let mut seen = vec![false; levels.len()];
        for part in &parts {
            prop_assert!(
                part.windows(2).all(|w| w[0] < w[1]),
                "shard indices must be strictly ascending"
            );
            for &i in part {
                prop_assert!(i < levels.len(), "index out of range");
                prop_assert!(!seen[i], "fault {} appears in two shards", i);
                seen[i] = true;
            }
        }
        for (i, s) in seen.iter().enumerate() {
            prop_assert!(*s, "fault {} lost by {}", i, plan);
        }
    }

    /// Shard sizes stay balanced: the largest and smallest shard differ by
    /// at most one fault for round-robin, contiguous, and level-aware
    /// dealing.
    #[test]
    fn shard_partition_is_balanced(
        plan in arb_plan(),
        levels in prop::collection::vec(0u32..64, 1..200),
        shards in 1usize..12,
    ) {
        let parts = plan.partition(&levels, shards);
        let min = parts.iter().map(Vec::len).min().unwrap();
        let max = parts.iter().map(Vec::len).max().unwrap();
        prop_assert!(max - min <= 1, "{}: sizes {} .. {}", plan, min, max);
    }

    /// `detections_of` output is sorted by (pattern, fault) and contains
    /// exactly the detected faults.
    #[test]
    fn detections_are_sorted_and_complete(
        statuses in prop::collection::vec(
            prop_oneof![
                Just(FaultStatus::Undetected),
                Just(FaultStatus::Untestable),
                (0usize..50).prop_map(|pattern| FaultStatus::Detected { pattern }),
            ],
            0..120,
        ),
    ) {
        let dets = detections_of(&statuses);
        prop_assert!(dets.windows(2).all(|w| (w[0].1, w[0].0) < (w[1].1, w[1].0)));
        prop_assert_eq!(
            dets.len(),
            statuses.iter().filter(|s| s.is_detected()).count()
        );
        for (fault, pattern) in dets {
            prop_assert_eq!(
                statuses[fault as usize],
                FaultStatus::Detected { pattern: pattern as usize }
            );
        }
    }
}
