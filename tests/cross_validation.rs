//! Cross-validation: every fault simulator in the workspace must agree with
//! the serial golden reference on which faults each pattern sequence
//! detects — across circuits, fault models, csim variants, and initial
//! states.

use cfs_baselines::{DeductiveSim, ProofsSim, SerialSim};
use cfs_core::{ConcurrentSim, CsimOptions, CsimVariant};
use cfs_faults::{collapse_stuck_at, enumerate_stuck_at, StuckAt};
use cfs_logic::Logic;
use cfs_netlist::generate::{benchmark, generate, CircuitSpec};
use cfs_netlist::{data::s27, Circuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

fn assert_same_detections(
    circuit: &Circuit,
    faults: &[StuckAt],
    reference: &[cfs_faults::FaultStatus],
    candidate: &[cfs_faults::FaultStatus],
    label: &str,
) {
    assert_eq!(reference.len(), candidate.len());
    for (i, (a, b)) in reference.iter().zip(candidate).enumerate() {
        let b_det = b.is_detected();
        // Candidate may prove a fault untestable; the serial reference then
        // reports it undetected.
        let b_undet = !b_det;
        let a_det = a.is_detected();
        assert!(
            a_det == b_det || (!a_det && b_undet),
            "{label}: fault {i} ({}) reference={a} candidate={b}",
            faults[i].describe(circuit)
        );
        assert_eq!(
            a_det,
            b_det,
            "{label}: fault {i} ({})",
            faults[i].describe(circuit)
        );
    }
}

fn cross_validate(circuit: &Circuit, patterns: &[Vec<Logic>], reset: Option<Vec<Logic>>) {
    let faults = enumerate_stuck_at(circuit);
    let mut serial = SerialSim::new(circuit, &faults);
    if let Some(s) = &reset {
        serial = serial.with_reset_state(s.clone());
    }
    let reference = serial.run(patterns);

    for variant in CsimVariant::ALL {
        let mut sim = ConcurrentSim::new(circuit, &faults, variant.options());
        if let Some(s) = &reset {
            sim.set_state(s);
        }
        let report = sim.run(patterns);
        assert_same_detections(
            circuit,
            &faults,
            &reference.statuses,
            &report.statuses,
            &format!("{} on {}", variant.name(), circuit.name()),
        );
    }

    let mut proofs = ProofsSim::new(circuit, &faults);
    if let Some(s) = &reset {
        proofs.set_state(s);
    }
    let report = proofs.run(patterns);
    assert_same_detections(
        circuit,
        &faults,
        &reference.statuses,
        &report.statuses,
        &format!("proofs on {}", circuit.name()),
    );

    if let Some(s) = reset {
        if s.iter().all(|v| v.is_binary()) && patterns.iter().flatten().all(|v| v.is_binary()) {
            let ded = DeductiveSim::new(circuit, &faults, s)
                .run(patterns)
                .expect("binary inputs");
            assert_same_detections(
                circuit,
                &faults,
                &reference.statuses,
                &ded.statuses,
                &format!("deductive on {}", circuit.name()),
            );
        }
    }
}

#[test]
fn s27_all_simulators_agree_from_x_state() {
    let c = s27();
    let patterns = random_patterns(&c, 50, 0xA5A5);
    cross_validate(&c, &patterns, None);
}

#[test]
fn s27_all_simulators_agree_from_reset() {
    let c = s27();
    let patterns = random_patterns(&c, 50, 0x1234);
    cross_validate(&c, &patterns, Some(vec![Logic::Zero; c.num_dffs()]));
}

#[test]
fn generated_small_circuits_agree_from_x_state() {
    for seed in 0..6 {
        let spec = CircuitSpec::new(format!("cv{seed}"), 5, 4, 6, 60, 1000 + seed);
        let c = generate(&spec);
        let patterns = random_patterns(&c, 30, seed);
        cross_validate(&c, &patterns, None);
    }
}

#[test]
fn generated_small_circuits_agree_from_reset() {
    for seed in 0..4 {
        let spec = CircuitSpec::new(format!("cvr{seed}"), 4, 3, 5, 50, 2000 + seed);
        let c = generate(&spec);
        let patterns = random_patterns(&c, 30, seed + 77);
        let mut rng = StdRng::seed_from_u64(seed);
        let reset: Vec<Logic> = (0..c.num_dffs())
            .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
            .collect();
        cross_validate(&c, &patterns, Some(reset));
    }
}

#[test]
fn generated_circuit_with_x_patterns_agrees() {
    // Patterns containing X exercise three-valued propagation in every
    // simulator (deductive skipped: binary-only).
    let spec = CircuitSpec::new("cvx", 5, 4, 4, 50, 31337);
    let c = generate(&spec);
    let mut rng = StdRng::seed_from_u64(9);
    let patterns: Vec<Vec<Logic>> = (0..30)
        .map(|_| {
            (0..c.num_inputs())
                .map(|_| match rng.gen_range(0..10) {
                    0 => Logic::X,
                    k => Logic::from_bool(k % 2 == 0),
                })
                .collect()
        })
        .collect();
    cross_validate(&c, &patterns, None);
}

#[test]
fn s298g_collapsed_universe_agrees() {
    // A mid-size generated benchmark with the collapsed fault list.
    let c = benchmark("s298g").unwrap();
    let collapsed = collapse_stuck_at(&c);
    let faults = collapsed.representatives;
    let patterns = random_patterns(&c, 60, 0xBEEF);

    let reference = SerialSim::new(&c, &faults).run(&patterns);
    let mut mv = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
    let report = mv.run(&patterns);
    assert_same_detections(
        &c,
        &faults,
        &reference.statuses,
        &report.statuses,
        "csim-MV s298g",
    );

    let mut proofs = ProofsSim::new(&c, &faults);
    let pr = proofs.run(&patterns);
    assert_same_detections(
        &c,
        &faults,
        &reference.statuses,
        &pr.statuses,
        "proofs s298g",
    );
}

#[test]
fn macro_cap_variations_do_not_change_results() {
    let c = benchmark("s344g").unwrap();
    let faults = enumerate_stuck_at(&c);
    let patterns = random_patterns(&c, 40, 42);
    let mut reference: Option<Vec<bool>> = None;
    for cap in [2, 4, 7, 10] {
        let mut sim = ConcurrentSim::new(
            &c,
            &faults,
            CsimOptions {
                macro_max_inputs: cap,
                ..CsimVariant::Mv.options()
            },
        );
        let report = sim.run(&patterns);
        let det: Vec<bool> = report.statuses.iter().map(|s| s.is_detected()).collect();
        match &reference {
            None => reference = Some(det),
            Some(r) => assert_eq!(r, &det, "cap {cap}"),
        }
    }
}

#[test]
fn detection_cycle_indices_match_serial() {
    // Not just *whether* but *when*: first-detection pattern indices agree.
    let c = s27();
    let faults = enumerate_stuck_at(&c);
    let patterns = random_patterns(&c, 40, 7);
    let reference = SerialSim::new(&c, &faults).run(&patterns);
    let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
    let report = sim.run(&patterns);
    for (i, (a, b)) in reference.statuses.iter().zip(&report.statuses).enumerate() {
        use cfs_faults::FaultStatus::*;
        match (a, b) {
            (Detected { pattern: pa }, Detected { pattern: pb }) => {
                assert_eq!(pa, pb, "fault {i} first detection cycle")
            }
            (Undetected, Undetected) | (Undetected, Untestable) => {}
            other => panic!("fault {i}: {other:?}"),
        }
    }
}
