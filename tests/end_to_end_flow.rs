//! End-to-end flow: generate a circuit → collapse faults → generate tests
//! (ATPG) → confirm coverage with three independent simulators → measure
//! transition coverage of the same sequence → diagnose an injected defect.
//! This is the complete downstream-user workflow on one circuit.

use cfs_atpg::{generate_tests, AtpgOptions};
use cfs_baselines::{FaultDictionary, ProofsSim, SerialSim};
use cfs_core::{ConcurrentSim, CsimVariant, TransitionOptions, TransitionSim};
use cfs_faults::{collapse_stuck_at, enumerate_transition};
use cfs_netlist::generate::benchmark;

#[test]
fn full_workflow_on_s386g() {
    let circuit = benchmark("s386g").expect("known benchmark");
    let faults = collapse_stuck_at(&circuit).representatives;

    // 1. Test generation.
    let outcome = generate_tests(
        &circuit,
        &faults,
        AtpgOptions {
            max_frames: 4,
            backtrack_limit: 200,
            random_patterns: 64,
            seed: 11,
        },
    );
    assert!(!outcome.patterns.is_empty());
    let atpg_detected = outcome.report.detected();
    assert!(atpg_detected > 0);

    // 2. Three independent simulators confirm the same coverage.
    let mut csim = ConcurrentSim::new(&circuit, &faults, CsimVariant::Mv.options());
    let c = csim.run(&outcome.patterns);
    let mut proofs = ProofsSim::new(&circuit, &faults);
    let p = proofs.run(&outcome.patterns);
    let s = SerialSim::new(&circuit, &faults).run(&outcome.patterns);
    assert_eq!(c.detected(), atpg_detected);
    assert_eq!(p.detected(), atpg_detected);
    assert_eq!(s.detected(), atpg_detected);

    // 3. The same stuck-at sequence is a much weaker transition test
    //    (the paper's Table 6 point).
    let tfaults = enumerate_transition(&circuit);
    let mut tsim = TransitionSim::new(&circuit, &tfaults, TransitionOptions::default());
    let t = tsim.run(&outcome.patterns);
    assert!(
        t.coverage_percent() < c.coverage_percent(),
        "transition {:.1}% < stuck-at {:.1}%",
        t.coverage_percent(),
        c.coverage_percent()
    );

    // 4. Diagnosis: a detected fault's dictionary signature identifies its
    //    indistinguishability class.
    let dict = FaultDictionary::build(&circuit, &faults, &outcome.patterns);
    let culprit = (0..faults.len())
        .find(|&i| !dict.signature(i).unwrap().is_empty())
        .expect("something is detected");
    let ranked = dict.diagnose(dict.signature(culprit).unwrap());
    assert_eq!(
        dict.signature(ranked[0].0),
        dict.signature(culprit),
        "top candidate is signature-identical to the culprit"
    );
}
