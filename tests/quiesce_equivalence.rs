//! Differential equivalence for the engine's quiescence gate: gated runs
//! (`quiesce_window > 0`) must be bit-identical to ungated runs — same
//! per-fault statuses, including exact first-detection pattern indices —
//! for every window size, csim variant, fault model, thread count, and
//! batch window, on stimulus crafted to actually drive nodes dormant
//! (random patterns held for multi-cycle bursts).
//!
//! Also pins checkpoint/resume: killing a run at any pattern boundary,
//! round-tripping the checkpoint through its byte serialization, and
//! resuming in a fresh simulator must reproduce the cold run exactly
//! (statuses *and* event counters), with and without gating.
//!
//! The adversarial fixture holds one input pattern far past the gating
//! window — driving most of the circuit dormant — then sweeps the whole
//! input space: faults detectable only by the late stimulus must still be
//! detected at the exact ungated pattern, which forces the wake protocol
//! to fire.

use cfs_core::{
    BatchOptions, Checkpoint, ConcurrentSim, CsimOptions, CsimVariant, NullProbe, ParallelSim,
    ParallelTransitionSim, ShardPlan, TransitionOptions, TransitionSim,
};
use cfs_faults::{collapse_stuck_at, enumerate_transition, FaultStatus};
use cfs_logic::Logic;
use cfs_netlist::generate::{generate, CircuitSpec};
use cfs_netlist::Circuit;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gating windows under test; the ungated reference is window 0.
const WINDOWS: [u32; 4] = [1, 2, 7, 16];

/// Random patterns never quiesce, so each random pattern is held for
/// `hold` consecutive cycles: the circuit settles, nodes go dormant, and
/// the next burst must wake exactly the nodes it touches.
fn hold_patterns(circuit: &Circuit, bursts: usize, hold: usize, seed: u64) -> Vec<Vec<Logic>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(bursts * hold);
    for _ in 0..bursts {
        let p: Vec<Logic> = (0..circuit.num_inputs())
            .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
            .collect();
        for _ in 0..hold {
            out.push(p.clone());
        }
    }
    out
}

/// `variant.options()` with a gating window applied.
fn gated(variant: CsimVariant, window: u32) -> CsimOptions {
    CsimOptions {
        quiesce_window: window,
        ..variant.options()
    }
}

fn gated_transition(window: u32) -> TransitionOptions {
    TransitionOptions {
        quiesce_window: window,
        ..TransitionOptions::default()
    }
}

/// Gated vs ungated serial stuck-at runs, all four variants × windows.
/// Returns the total gated skip count so callers can assert the gate
/// actually engaged somewhere in the matrix.
fn check_stuck_gated(circuit: &Circuit, patterns: &[Vec<Logic>]) -> u64 {
    let faults = collapse_stuck_at(circuit).representatives;
    let mut total_skips = 0;
    for variant in CsimVariant::ALL {
        let reference = ConcurrentSim::new(circuit, &faults, variant.options())
            .run(patterns)
            .statuses;
        for window in WINDOWS {
            let mut sim = ConcurrentSim::new(circuit, &faults, gated(variant, window));
            let report = sim.run(patterns);
            assert_eq!(
                report.statuses,
                reference,
                "{}: {variant} gated window={window} diverged from ungated",
                circuit.name()
            );
            total_skips += sim.quiesce_skips();
        }
    }
    total_skips
}

/// Gated vs ungated serial transition runs across windows.
fn check_transition_gated(circuit: &Circuit, patterns: &[Vec<Logic>]) -> u64 {
    let faults = enumerate_transition(circuit);
    let reference = TransitionSim::new(circuit, &faults, TransitionOptions::default())
        .run(patterns)
        .statuses;
    let mut total_skips = 0;
    for window in WINDOWS {
        let mut sim = TransitionSim::new(circuit, &faults, gated_transition(window));
        let report = sim.run(patterns);
        assert_eq!(
            report.statuses,
            reference,
            "{}: transition gated window={window} diverged from ungated",
            circuit.name()
        );
        total_skips += sim.quiesce_skips();
    }
    total_skips
}

#[test]
fn stuck_gated_matches_ungated_on_random_netlists() {
    let mut skips = 0;
    for seed in 0..4u64 {
        let spec = CircuitSpec::new(format!("qg{seed}"), 5, 4, 6, 70, 9300 + seed);
        let c = generate(&spec);
        let patterns = hold_patterns(&c, 12, 6, 31 + seed);
        skips += check_stuck_gated(&c, &patterns);
    }
    assert!(skips > 0, "the gate never engaged on the hold stimulus");
}

#[test]
fn stuck_gated_matches_ungated_on_a_benchmark() {
    let c = cfs_netlist::generate::benchmark("s298g").expect("known benchmark");
    let patterns = hold_patterns(&c, 16, 8, 0x1992);
    let skips = check_stuck_gated(&c, &patterns);
    assert!(skips > 0, "the gate never engaged on s298g");
}

#[test]
fn transition_gated_matches_ungated() {
    let mut skips = 0;
    for seed in 0..3u64 {
        let spec = CircuitSpec::new(format!("qgt{seed}"), 4, 3, 5, 60, 7300 + seed);
        let c = generate(&spec);
        let patterns = hold_patterns(&c, 10, 6, 77 + seed);
        skips += check_transition_gated(&c, &patterns);
    }
    let c = cfs_netlist::generate::benchmark("s298g").expect("known benchmark");
    skips += check_transition_gated(&c, &hold_patterns(&c, 12, 8, 0xDAC));
    assert!(skips > 0, "the transition gate never engaged");
}

/// Gating composes with both parallelism axes: fault shards and pattern
/// windows. The gated sharded/batched runs must match the ungated serial
/// reference bit for bit.
#[test]
fn gated_matches_under_sharding_and_batching() {
    let c = cfs_netlist::generate::benchmark("s298g").expect("known benchmark");
    let patterns = hold_patterns(&c, 12, 8, 0x41);
    let stuck = collapse_stuck_at(&c).representatives;
    let variant = CsimVariant::Mv;
    let stuck_ref = ConcurrentSim::new(&c, &stuck, variant.options())
        .run(&patterns)
        .statuses;
    let transition = enumerate_transition(&c);
    let transition_ref = TransitionSim::new(&c, &transition, TransitionOptions::default())
        .run(&patterns)
        .statuses;
    for threads in [1usize, 4] {
        for batch_window in [0usize, 16] {
            let batch = BatchOptions {
                window: batch_window,
                ..BatchOptions::default()
            };
            let mut par = ParallelSim::with_probes_sharded(
                &c,
                &stuck,
                gated(variant, 4),
                threads,
                threads,
                ShardPlan::RoundRobin,
                None,
                |_| NullProbe,
            );
            let report = par.run_batched(&patterns, &batch);
            assert_eq!(
                report.statuses, stuck_ref,
                "stuck gated threads={threads} batch={batch_window}"
            );
            let mut tpar = ParallelTransitionSim::with_probes_sharded(
                &c,
                &transition,
                gated_transition(4),
                threads,
                threads,
                ShardPlan::RoundRobin,
                None,
                |_| NullProbe,
            );
            let treport = tpar.run_batched(&patterns, &batch);
            assert_eq!(
                treport.statuses, transition_ref,
                "transition gated threads={threads} batch={batch_window}"
            );
        }
    }
}

/// A fault whose excitation arrives only long after the circuit went
/// dormant must still be detected, at the exact ungated pattern. The
/// stimulus holds one pattern for 40 cycles (dormancy streak ≫ every
/// window under test), then sweeps the whole 4-bit input space — so some
/// fault is necessarily detected first in the late phase.
#[test]
fn long_dormant_fault_still_detected_after_wake() {
    let c = cfs_netlist::data::s27();
    let n = c.num_inputs();
    let mut patterns = vec![vec![Logic::Zero; n]; 40];
    for bits in 0..(1u32 << n) {
        let p: Vec<Logic> = (0..n)
            .map(|i| Logic::from_bool(bits >> i & 1 == 1))
            .collect();
        for _ in 0..8 {
            patterns.push(p.clone());
        }
    }
    let faults = collapse_stuck_at(&c).representatives;
    let reference = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options())
        .run(&patterns)
        .statuses;
    let late = reference
        .iter()
        .filter(|s| matches!(s, FaultStatus::Detected { pattern } if *pattern >= 40))
        .count();
    assert!(
        late > 0,
        "fixture is vacuous: no detection after the quiet span"
    );
    for window in [1u32, 2, 8] {
        let mut sim = ConcurrentSim::new(&c, &faults, gated(CsimVariant::Mv, window));
        let report = sim.run(&patterns);
        assert_eq!(report.statuses, reference, "gated window={window}");
        assert!(
            sim.quiesce_skips() > 0,
            "window={window}: nothing went dormant during the 40-cycle hold"
        );
        assert!(
            sim.quiesce_wakes() > 0,
            "window={window}: the input-space sweep never woke a dormant node"
        );
    }
}

proptest! {
    /// Killing a stuck-at run at a random pattern boundary, serializing
    /// the checkpoint to bytes, and resuming in a fresh simulator
    /// reproduces the cold run exactly — statuses and event counters —
    /// for random gating windows and stimulus seeds.
    #[test]
    fn stuck_resume_at_random_checkpoint_matches_cold(
        seed in 0u64..500,
        cut in 1usize..63,
        window in 0u32..6,
    ) {
        let c = cfs_netlist::data::s27();
        let patterns = hold_patterns(&c, 16, 4, seed);
        let faults = collapse_stuck_at(&c).representatives;
        let options = gated(CsimVariant::Mv, window);
        let mut cold = ConcurrentSim::new(&c, &faults, options.clone());
        let cold_report = cold.run(&patterns);

        let mut first = ConcurrentSim::new(&c, &faults, options.clone());
        for p in &patterns[..cut] {
            first.step(p);
        }
        let bytes = first.checkpoint().to_bytes();
        drop(first);

        let restored = Checkpoint::from_bytes(&bytes).expect("round trip");
        let mut second = ConcurrentSim::new(&c, &faults, options);
        second.restore(&restored).expect("restore");
        for p in &patterns[cut..] {
            second.step(p);
        }
        prop_assert_eq!(second.statuses(), cold_report.statuses);
        prop_assert_eq!(second.events(), cold.events());
        prop_assert_eq!(second.fault_evaluations(), cold.fault_evaluations());
        prop_assert_eq!(second.peak_elements(), cold.peak_elements());
    }

    /// The same property for the transition engine, whose checkpoint
    /// additionally carries the previous-pattern pin values.
    #[test]
    fn transition_resume_at_random_checkpoint_matches_cold(
        seed in 0u64..500,
        cut in 1usize..47,
        window in 0u32..6,
    ) {
        let c = cfs_netlist::data::s27();
        let patterns = hold_patterns(&c, 12, 4, seed ^ 0xD5);
        let faults = enumerate_transition(&c);
        let options = gated_transition(window);
        let mut cold = TransitionSim::new(&c, &faults, options.clone());
        let cold_report = cold.run(&patterns);

        let mut first = TransitionSim::new(&c, &faults, options.clone());
        for p in &patterns[..cut] {
            first.step(p);
        }
        let bytes = first.checkpoint().to_bytes();
        drop(first);

        let restored = Checkpoint::from_bytes(&bytes).expect("round trip");
        let mut second = TransitionSim::new(&c, &faults, options);
        second.restore(&restored).expect("restore");
        for p in &patterns[cut..] {
            second.step(p);
        }
        prop_assert_eq!(second.statuses(), cold_report.statuses);
        prop_assert_eq!(second.events(), cold.events());
        prop_assert_eq!(second.fault_evaluations(), cold.fault_evaluations());
    }
}
