//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! bench-definition API the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! `criterion_group!` / `criterion_main!` — backed by a simple
//! median-of-samples timer instead of criterion's full statistics engine.
//! Each benchmark prints one line: `name ... median per-iter time`.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter, `name/param`.
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    pub last_median: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured number of samples and records the
    /// median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        println!("{full:<48} {:>12.3?}", bencher.last_median);
        self.criterion.results.push((full, bencher.last_median));
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain string id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// `(full benchmark id, median per-iteration time)` for every benchmark
    /// run so far — lets callers inspect results programmatically.
    pub results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.run(id.to_string(), f);
        self
    }
}

/// Bundles bench functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("csim", "s298g").to_string(), "csim/s298g");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn groups_record_results() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_function("id", |b| b.iter(|| black_box(2u64 + 2)));
            g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].0, "demo/id");
        assert_eq!(c.results[1].0, "demo/param/4");
    }

    fn noop_bench(_c: &mut Criterion) {}
    criterion_group!(sample_group, noop_bench);

    #[test]
    fn group_macro_builds_runner() {
        sample_group();
    }
}
