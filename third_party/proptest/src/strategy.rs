//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
#[derive(Debug)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
