//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! subset of proptest's API the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`, range and
//! tuple strategies, `Just`, `any`, `prop::collection::vec`,
//! `prop::sample::Index`, and the `proptest!`, `prop_oneof!`,
//! `prop_assume!`, `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs unreduced), no regression-file persistence, and a fixed
//! deterministic seed per test function so failures are reproducible.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generates one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy of an [`Arbitrary`] type.
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            SizeRange {
                start: r.start as usize,
                end: r.end as usize,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.end > self.size.start + 1 {
                self.size.start + (rng.next_u64() as usize) % (self.size.end - self.size.start)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling helpers (`Index`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An abstract index into a collection of yet-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Projects the abstract index onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs property-test functions: each `fn name(pat in strategy, ...) { .. }`
/// becomes a test that draws `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(config.cases);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(
                        let __proptest_value =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        let $pat = __proptest_value;
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("proptest case {} failed: {}", attempts, msg),
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2u32), 10u32..20]
    }

    proptest! {
        #[test]
        fn ranges_generate_in_bounds(x in 3usize..9, y in small()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y == 1 || y == 2 || (10..20).contains(&y));
        }

        #[test]
        fn vec_and_index_compose(
            v in prop::collection::vec(0u32..100, 1..6),
            pos in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            let i = pos.index(v.len());
            prop_assert!(v[i] < 100);
        }

        #[test]
        fn flat_map_threads_dependent_data(
            (len, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(any::<bool>(), n))
            }),
        ) {
            prop_assert_eq!(v.len(), len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_with_cases_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }

    #[test]
    fn assume_rejects_without_failing() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assume!(x < 5);
                prop_assert!(x < 5);
            }
        }
        inner();
    }
}
