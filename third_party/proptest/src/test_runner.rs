//! Test-runner support types: configuration, RNG, and case outcomes.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Deterministic generator driving value generation (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from the test name, so every test function has a
    /// reproducible but distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample from `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
