//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so this
//! crate reimplements exactly the slice of the `rand 0.8` API the workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen_bool` / `gen_range` / `gen`. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic, fast, and of ample quality for
//! workload generation and randomized tests. Streams differ from upstream
//! `rand`, which is fine: nothing in the workspace depends on the exact
//! values, only on determinism in the seed.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < width / 2^64 — irrelevant for the small
                // ranges used here.
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value interface (blanket-implemented for every
/// [`RngCore`], as in upstream `rand`).
pub trait Rng: RngCore {
    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u32> = (0..16).map(|_| c.gen_range(0..1000u32)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u32> = (0..16).map(|_| d.gen_range(0..1000u32)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
